#include "data/completion.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "data/planetlab_synth.h"

namespace bcc {
namespace {

TEST(PartialMatrix, SetGetClear) {
  PartialBandwidthMatrix m(4);
  EXPECT_FALSE(m.at(0, 1).has_value());
  m.set(0, 1, 50.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0).value(), 50.0);  // symmetric indexing
  m.clear(1, 0);
  EXPECT_FALSE(m.at(0, 1).has_value());
  EXPECT_THROW(m.set(0, 0, 1.0), ContractViolation);
  EXPECT_THROW(m.set(0, 1, 0.0), ContractViolation);
  EXPECT_THROW(m.at(0, 9), ContractViolation);
}

TEST(PartialMatrix, MissingCounts) {
  PartialBandwidthMatrix m(3);
  EXPECT_EQ(m.total_missing(), 3u);
  EXPECT_EQ(m.missing_count(0), 2u);
  m.set(0, 1, 10.0);
  EXPECT_EQ(m.total_missing(), 2u);
  EXPECT_EQ(m.missing_count(0), 1u);
  EXPECT_EQ(m.missing_count(2), 2u);
  EXPECT_FALSE(m.complete());
  m.set(0, 2, 10.0);
  m.set(1, 2, 10.0);
  EXPECT_TRUE(m.complete());
}

TEST(Completion, MaskFractionRoughlyHonored) {
  Rng data_rng(1);
  SynthOptions options;
  options.hosts = 60;
  const SynthDataset data = synthesize_planetlab(options, data_rng);
  Rng mask_rng(2);
  const PartialBandwidthMatrix masked =
      mask_measurements(data.bandwidth, 0.3, mask_rng);
  const double total_pairs = 60.0 * 59.0 / 2.0;
  const double missing =
      static_cast<double>(masked.total_missing()) / total_pairs;
  EXPECT_NEAR(missing, 0.3, 0.05);
}

TEST(Completion, ExtractedSubsetIsComplete) {
  Rng data_rng(3);
  SynthOptions options;
  options.hosts = 50;
  const SynthDataset data = synthesize_planetlab(options, data_rng);
  for (double fraction : {0.05, 0.2, 0.5}) {
    Rng mask_rng(4);
    const PartialBandwidthMatrix masked =
        mask_measurements(data.bandwidth, fraction, mask_rng);
    const auto subset = extract_complete_subset(masked);
    // Every kept pair is measured.
    for (std::size_t i = 0; i < subset.size(); ++i) {
      for (std::size_t j = i + 1; j < subset.size(); ++j) {
        EXPECT_TRUE(masked.at(subset[i], subset[j]).has_value());
      }
    }
    // Light masking keeps a sizeable subset (every missing pair must lose
    // an endpoint, so ~n*0.05 disjoint gaps already cost dozens of nodes —
    // the same drastic shrink the paper saw: 459 -> 190 and 497 -> 317).
    if (fraction <= 0.05) {
      EXPECT_GE(subset.size(), 20u);
    }
  }
}

TEST(Completion, CompleteInputKeepsEverything) {
  Rng data_rng(5);
  SynthOptions options;
  options.hosts = 20;
  const SynthDataset data = synthesize_planetlab(options, data_rng);
  Rng mask_rng(6);
  const PartialBandwidthMatrix full =
      mask_measurements(data.bandwidth, 0.0, mask_rng);
  const auto subset = extract_complete_subset(full);
  EXPECT_EQ(subset.size(), 20u);
}

TEST(Completion, FullyMissingKeepsAtMostOne) {
  PartialBandwidthMatrix empty(5);
  const auto subset = extract_complete_subset(empty);
  EXPECT_LE(subset.size(), 1u);
}

TEST(Completion, SubsetIsSortedAscending) {
  Rng data_rng(7);
  SynthOptions options;
  options.hosts = 30;
  const SynthDataset data = synthesize_planetlab(options, data_rng);
  Rng mask_rng(8);
  const auto masked = mask_measurements(data.bandwidth, 0.25, mask_rng);
  const auto subset = extract_complete_subset(masked);
  EXPECT_TRUE(std::is_sorted(subset.begin(), subset.end()));
}

TEST(Completion, CompleteSubmatrixMatchesSourceValues) {
  Rng data_rng(9);
  SynthOptions options;
  options.hosts = 25;
  const SynthDataset data = synthesize_planetlab(options, data_rng);
  Rng mask_rng(10);
  const auto masked = mask_measurements(data.bandwidth, 0.2, mask_rng);
  const auto subset = extract_complete_subset(masked);
  ASSERT_GE(subset.size(), 2u);
  const BandwidthMatrix sub = complete_submatrix(masked, subset);
  for (std::size_t i = 0; i < subset.size(); ++i) {
    for (std::size_t j = i + 1; j < subset.size(); ++j) {
      EXPECT_DOUBLE_EQ(sub.at(i, j),
                       data.bandwidth.at(subset[i], subset[j]));
    }
  }
}

TEST(Completion, CompleteSubmatrixRejectsGaps) {
  PartialBandwidthMatrix m(3);
  m.set(0, 1, 10.0);
  const std::vector<NodeId> subset = {0, 1, 2};  // pair (0,2) missing
  EXPECT_THROW(complete_submatrix(m, subset), ContractViolation);
}

TEST(Completion, LoadPartialCsvTreatsNonPositiveAsMissing) {
  const auto dir =
      std::filesystem::temp_directory_path() / "bcc_completion_test";
  std::filesystem::create_directories(dir);
  {
    std::ofstream os(dir / "raw.csv");
    os << "0,40,0\n60,0,10\n0,12,0\n";
  }
  const PartialBandwidthMatrix raw =
      load_partial_bandwidth_csv((dir / "raw.csv").string());
  ASSERT_EQ(raw.size(), 3u);
  EXPECT_DOUBLE_EQ(raw.at(0, 1).value(), 50.0);   // both directions: average
  EXPECT_FALSE(raw.at(0, 2).has_value());         // neither measured
  EXPECT_DOUBLE_EQ(raw.at(1, 2).value(), 11.0);   // both: average
  std::filesystem::remove_all(dir);
}

TEST(Completion, LoadPartialCsvSingleDirection) {
  const auto dir =
      std::filesystem::temp_directory_path() / "bcc_completion_test2";
  std::filesystem::create_directories(dir);
  {
    std::ofstream os(dir / "raw.csv");
    os << "0,25\n0,0\n";  // only forward measured
  }
  const PartialBandwidthMatrix raw =
      load_partial_bandwidth_csv((dir / "raw.csv").string());
  EXPECT_DOUBLE_EQ(raw.at(0, 1).value(), 25.0);
  std::filesystem::remove_all(dir);
}

TEST(Completion, LoadPartialCsvRejectsNonSquare) {
  const auto dir =
      std::filesystem::temp_directory_path() / "bcc_completion_test3";
  std::filesystem::create_directories(dir);
  {
    std::ofstream os(dir / "raw.csv");
    os << "0,1,2\n1,0,3\n";
  }
  EXPECT_THROW(load_partial_bandwidth_csv((dir / "raw.csv").string()),
               std::runtime_error);
  std::filesystem::remove_all(dir);
}

TEST(Completion, PipelineEndToEnd) {
  // Raw incomplete trace -> complete submatrix -> usable dataset, exactly
  // the paper's preprocessing sequence.
  Rng data_rng(11);
  SynthOptions options;
  options.hosts = 80;
  const SynthDataset data = synthesize_planetlab(options, data_rng);
  Rng mask_rng(12);
  const auto masked = mask_measurements(data.bandwidth, 0.15, mask_rng);
  const auto subset = extract_complete_subset(masked);
  ASSERT_GE(subset.size(), 10u);
  const BandwidthMatrix usable = complete_submatrix(masked, subset);
  const DistanceMatrix d = rational_transform(usable);
  EXPECT_EQ(d.size(), subset.size());
  EXPECT_GT(d.min_distance(), 0.0);
}

}  // namespace
}  // namespace bcc
