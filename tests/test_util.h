// Shared helpers for the bcc test suite: random metric-space generators and
// small fixtures used across module tests.
#pragma once

#include <vector>

#include "common/rng.h"
#include "euclid/point2.h"
#include "metric/distance_matrix.h"
#include "tree/weighted_tree.h"

namespace bcc::testutil {

/// A random edge-weighted tree over n leaf-hosts (internal vertices
/// optional) and its induced *perfect* tree metric over the hosts.
struct RandomTreeMetric {
  DistanceMatrix distances;
};

/// Builds a random tree metric: hosts 0..n-1 are leaves hanging off a random
/// internal topology with weights in [min_w, max_w]. The result satisfies
/// 4PC exactly (up to floating point).
inline DistanceMatrix random_tree_metric(std::size_t n, Rng& rng,
                                         double min_w = 0.5,
                                         double max_w = 20.0) {
  BCC_REQUIRE(n >= 1);
  WeightedTree tree;
  // Internal skeleton: a random recursive tree of n_internal vertices.
  const std::size_t n_internal = std::max<std::size_t>(1, n / 3);
  std::vector<TreeVertex> internal(n_internal);
  internal[0] = tree.add_vertex();
  for (std::size_t i = 1; i < n_internal; ++i) {
    internal[i] = tree.add_vertex();
    tree.connect(internal[static_cast<std::size_t>(rng.below(i))], internal[i],
                 rng.uniform(min_w, max_w));
  }
  std::vector<TreeVertex> leaf(n);
  for (std::size_t h = 0; h < n; ++h) {
    leaf[h] = tree.add_vertex();
    tree.connect(internal[static_cast<std::size_t>(rng.below(n_internal))],
                 leaf[h], rng.uniform(min_w, max_w));
  }
  DistanceMatrix d(n);
  for (std::size_t u = 0; u < n; ++u) {
    const auto from_u = tree.distances_from(leaf[u]);
    for (std::size_t v = u + 1; v < n; ++v) d.set(u, v, from_u[leaf[v]]);
  }
  return d;
}

/// A random metric that deliberately violates 4PC: a tree metric with
/// multiplicative lognormal noise per pair (noise can break the triangle
/// inequality too — that is intended; algorithms must not crash on it).
inline DistanceMatrix noisy_tree_metric(std::size_t n, Rng& rng,
                                        double sigma = 0.3) {
  DistanceMatrix d = random_tree_metric(n, rng);
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      d.set(u, v, d.at(u, v) * rng.lognormal(0.0, sigma));
    }
  }
  return d;
}

/// Random 2-D points in the unit square scaled by `extent`.
inline std::vector<Point2> random_points(std::size_t n, Rng& rng,
                                         double extent = 100.0) {
  std::vector<Point2> pts(n);
  for (auto& p : pts) {
    p.x = rng.uniform(0.0, extent);
    p.y = rng.uniform(0.0, extent);
  }
  return pts;
}

/// Distance matrix of a 2-D point set (always a valid metric, rarely 4PC).
inline DistanceMatrix euclidean_metric(const std::vector<Point2>& pts) {
  DistanceMatrix d(pts.size());
  for (std::size_t u = 0; u < pts.size(); ++u) {
    for (std::size_t v = u + 1; v < pts.size(); ++v) {
      d.set(u, v, dist2d(pts[u], pts[v]));
    }
  }
  return d;
}

/// Identity universe 0..n-1.
inline std::vector<NodeId> iota_universe(std::size_t n) {
  std::vector<NodeId> u(n);
  for (std::size_t i = 0; i < n; ++i) u[i] = i;
  return u;
}

}  // namespace bcc::testutil
