#include "data/latency_synth.h"

#include <gtest/gtest.h>

#include "metric/four_point.h"
#include "tree/embedder.h"

namespace bcc {
namespace {

TEST(LatencySynth, ProducesPositiveSymmetricRtts) {
  Rng rng(1);
  LatencyOptions options;
  options.hosts = 40;
  const DistanceMatrix rtt = synthesize_latency(options, rng);
  ASSERT_EQ(rtt.size(), 40u);
  for (NodeId u = 0; u < 40; ++u) {
    for (NodeId v = u + 1; v < 40; ++v) {
      EXPECT_GT(rtt.at(u, v), 0.0);
      EXPECT_DOUBLE_EQ(rtt.at(u, v), rtt.at(v, u));
    }
  }
}

TEST(LatencySynth, ZeroJitterIsPerfectTreeMetric) {
  Rng rng(2);
  LatencyOptions options;
  options.hosts = 12;
  options.jitter_sigma = 0.0;
  const DistanceMatrix rtt = synthesize_latency(options, rng);
  EXPECT_TRUE(is_tree_metric(rtt, 1e-6));
}

TEST(LatencySynth, JitterDegradesTreeness) {
  auto eps_at = [](double jitter) {
    Rng rng(3);
    LatencyOptions options;
    options.hosts = 40;
    options.jitter_sigma = jitter;
    const DistanceMatrix rtt = synthesize_latency(options, rng);
    Rng est(4);
    return estimate_treeness(rtt, est, 15000).epsilon_avg;
  };
  EXPECT_LT(eps_at(0.0), eps_at(0.2));
  EXPECT_LT(eps_at(0.2), eps_at(0.6));
}

TEST(LatencySynth, RttScaleTracksHopParameters) {
  Rng r1(5), r2(5);
  LatencyOptions slow;
  slow.hosts = 30;
  slow.core_hop_ms_min = 20.0;
  slow.core_hop_ms_max = 60.0;
  LatencyOptions fast;
  fast.hosts = 30;
  fast.core_hop_ms_min = 1.0;
  fast.core_hop_ms_max = 3.0;
  const DistanceMatrix a = synthesize_latency(slow, r1);
  const DistanceMatrix b = synthesize_latency(fast, r2);
  EXPECT_GT(a.max_distance(), b.max_distance());
}

TEST(LatencySynth, EmbedsExactlyWhenPerfect) {
  // The future-work claim in executable form: the unchanged pipeline embeds
  // latency exactly when the RTT matrix is a tree metric.
  Rng rng(6);
  LatencyOptions options;
  options.hosts = 25;
  options.jitter_sigma = 0.0;
  const DistanceMatrix rtt = synthesize_latency(options, rng);
  Rng order(7);
  const auto fw = build_framework(rtt, order);
  const DistanceMatrix pred = fw.predicted_distances();
  for (NodeId u = 0; u < 25; ++u) {
    for (NodeId v = u + 1; v < 25; ++v) {
      EXPECT_NEAR(pred.at(u, v), rtt.at(u, v), 1e-6);
    }
  }
}

TEST(LatencySynth, ValidatesOptions) {
  Rng rng(8);
  LatencyOptions options;
  options.hosts = 1;
  EXPECT_THROW(synthesize_latency(options, rng), ContractViolation);
  options.hosts = 10;
  options.core_hop_ms_min = 0.0;
  EXPECT_THROW(synthesize_latency(options, rng), ContractViolation);
  options.core_hop_ms_min = 5.0;
  options.core_hop_ms_max = 1.0;
  EXPECT_THROW(synthesize_latency(options, rng), ContractViolation);
  options.core_hop_ms_max = 10.0;
  options.jitter_sigma = -1.0;
  EXPECT_THROW(synthesize_latency(options, rng), ContractViolation);
}

}  // namespace
}  // namespace bcc
