#include "common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace bcc {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test directory: ctest runs each TEST as its own process, possibly
    // in parallel, and a shared directory lets one test's TearDown delete
    // another's files mid-write.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::temp_directory_path() /
           (std::string("bcc_csv_test_") + info->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  void write_file(const std::string& name, const std::string& content) {
    std::ofstream os(path(name));
    os << content;
  }

  std::filesystem::path dir_;
};

TEST_F(CsvTest, RoundTripMatrix) {
  std::vector<std::vector<double>> rows = {{1.5, 2.0}, {3.25, -4.0}};
  write_matrix_csv(path("m.csv"), rows, {"a", "b"});
  const CsvTable t = read_csv(path("m.csv"));
  ASSERT_EQ(t.header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(t.rows[0][0], 1.5);
  EXPECT_DOUBLE_EQ(t.rows[1][1], -4.0);
}

TEST_F(CsvTest, RoundTripWithoutHeader) {
  std::vector<std::vector<double>> rows = {{1, 2, 3}};
  write_matrix_csv(path("nh.csv"), rows);
  const CsvTable t = read_csv(path("nh.csv"));
  EXPECT_TRUE(t.header.empty());
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(t.rows[0].size(), 3u);
}

TEST_F(CsvTest, HighPrecisionSurvivesRoundTrip) {
  const double v = 0.12345678901234567;
  write_matrix_csv(path("p.csv"), {{v}});
  const CsvTable t = read_csv(path("p.csv"));
  EXPECT_DOUBLE_EQ(t.rows[0][0], v);
}

TEST_F(CsvTest, CommentsAndBlankLinesSkipped) {
  write_file("c.csv", "# comment\n\n1,2\n# another\n3,4\n");
  const CsvTable t = read_csv(path("c.csv"));
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(t.rows[1][0], 3.0);
}

TEST_F(CsvTest, RaggedRowsRejected) {
  write_file("r.csv", "1,2\n3\n");
  EXPECT_THROW(read_csv(path("r.csv")), std::runtime_error);
}

TEST_F(CsvTest, NonNumericCellRejected) {
  write_file("x.csv", "1,2\n3,oops\n");
  EXPECT_THROW(read_csv(path("x.csv")), std::runtime_error);
}

TEST_F(CsvTest, MissingFileRejected) {
  EXPECT_THROW(read_csv(path("does_not_exist.csv")), std::runtime_error);
}

TEST_F(CsvTest, UnwritablePathRejected) {
  EXPECT_THROW(write_matrix_csv((dir_ / "no" / "dir" / "f.csv").string(), {{1}}),
               std::runtime_error);
}

TEST(SplitFields, BasicAndWhitespace) {
  auto f = split_fields(" a , b,c ");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "a");
  EXPECT_EQ(f[1], "b");
  EXPECT_EQ(f[2], "c");
}

TEST(SplitFields, TrailingSeparatorYieldsEmptyField) {
  auto f = split_fields("a,b,");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[2], "");
}

TEST(SplitFields, AlternateSeparator) {
  auto f = split_fields("a\tb", '\t');
  ASSERT_EQ(f.size(), 2u);
}

}  // namespace
}  // namespace bcc
