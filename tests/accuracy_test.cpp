#include "stats/accuracy.h"

#include <gtest/gtest.h>

#include "metric/four_point.h"

namespace bcc {
namespace {

BandwidthMatrix small_bw() {
  BandwidthMatrix bw(4, 1.0);
  bw.set(0, 1, 50.0);
  bw.set(0, 2, 20.0);
  bw.set(0, 3, 80.0);
  bw.set(1, 2, 10.0);
  bw.set(1, 3, 60.0);
  bw.set(2, 3, 30.0);
  return bw;
}

TEST(Wpr, CountsWrongPairs) {
  const BandwidthMatrix bw = small_bw();
  WprAccumulator acc;
  // Cluster {0,1,2} at b=25: pairs (0,1)=50 ok, (0,2)=20 wrong, (1,2)=10 wrong.
  acc.add_cluster(bw, {0, 1, 2}, 25.0);
  EXPECT_EQ(acc.total_pairs(), 3u);
  EXPECT_EQ(acc.wrong_pairs(), 2u);
  EXPECT_NEAR(acc.rate(), 2.0 / 3.0, 1e-12);
}

TEST(Wpr, PerfectClusterHasZeroRate) {
  const BandwidthMatrix bw = small_bw();
  WprAccumulator acc;
  acc.add_cluster(bw, {0, 1, 3}, 50.0);  // 50, 80, 60 all >= 50
  EXPECT_DOUBLE_EQ(acc.rate(), 0.0);
}

TEST(Wpr, EmptyAndSingletonClustersAddNothing) {
  const BandwidthMatrix bw = small_bw();
  WprAccumulator acc;
  acc.add_cluster(bw, {}, 10.0);
  acc.add_cluster(bw, {2}, 10.0);
  EXPECT_EQ(acc.total_pairs(), 0u);
  EXPECT_DOUBLE_EQ(acc.rate(), 0.0);
}

TEST(Wpr, AccumulatesAcrossClustersAndMerges) {
  const BandwidthMatrix bw = small_bw();
  WprAccumulator a, b;
  a.add_cluster(bw, {0, 1}, 60.0);  // 50 < 60: wrong
  b.add_cluster(bw, {0, 3}, 60.0);  // 80 >= 60: ok
  a += b;
  EXPECT_EQ(a.total_pairs(), 2u);
  EXPECT_EQ(a.wrong_pairs(), 1u);
  EXPECT_DOUBLE_EQ(a.rate(), 0.5);
}

TEST(Rr, Accumulates) {
  RrAccumulator rr;
  rr.add_query(true);
  rr.add_query(false);
  rr.add_query(true);
  EXPECT_EQ(rr.found_queries(), 2u);
  EXPECT_EQ(rr.total_queries(), 3u);
  EXPECT_NEAR(rr.rate(), 2.0 / 3.0, 1e-12);
  RrAccumulator other;
  other.add_query(false);
  rr += other;
  EXPECT_EQ(rr.total_queries(), 4u);
  EXPECT_DOUBLE_EQ(RrAccumulator{}.rate(), 0.0);
}

TEST(RelativeErrors, PerfectPredictionIsZero) {
  const BandwidthMatrix bw = small_bw();
  const DistanceMatrix d = rational_transform(bw, 1000.0);
  const auto errs = relative_bandwidth_errors(bw, d, 1000.0);
  ASSERT_EQ(errs.size(), 6u);
  for (double e : errs) EXPECT_NEAR(e, 0.0, 1e-12);
}

TEST(RelativeErrors, KnownError) {
  BandwidthMatrix bw(2, 1.0);
  bw.set(0, 1, 100.0);
  DistanceMatrix pred(2);
  pred.set(0, 1, 1000.0 / 50.0);  // predicts 50 instead of 100
  const auto errs = relative_bandwidth_errors(bw, pred, 1000.0);
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_NEAR(errs[0], 0.5, 1e-12);
}

TEST(RelativeErrors, ZeroPredictedDistanceIsSentinel) {
  BandwidthMatrix bw(2, 1.0);
  bw.set(0, 1, 100.0);
  DistanceMatrix pred(2);  // off-diagonal 0 -> infinite predicted bandwidth
  const auto errs = relative_bandwidth_errors(bw, pred, 1000.0);
  EXPECT_DOUBLE_EQ(errs[0], 10.0);
}

TEST(RelativeErrors, SizeMismatchRejected) {
  EXPECT_THROW(
      relative_bandwidth_errors(BandwidthMatrix(3, 1.0), DistanceMatrix(4)),
      ContractViolation);
}

TEST(Fb, IsBandwidthCdf) {
  const BandwidthMatrix bw = small_bw();  // {50,20,80,10,60,30}
  EXPECT_DOUBLE_EQ(f_b(bw, 5.0), 0.0);
  EXPECT_NEAR(f_b(bw, 30.0), 3.0 / 6.0, 1e-12);
  EXPECT_DOUBLE_EQ(f_b(bw, 100.0), 1.0);
}

TEST(Fa, CountsWindow) {
  const BandwidthMatrix bw = small_bw();
  // b=25, window 10: [15,35] contains {20, 30} -> 2/6.
  EXPECT_NEAR(f_a(bw, 25.0, 10.0), 2.0 / 6.0, 1e-12);
  EXPECT_DOUBLE_EQ(f_a(bw, 200.0, 10.0), 0.0);
}

TEST(FaStar, BoundsAtAlpha) {
  const double alpha = 3.2;
  EXPECT_NEAR(f_a_star(0.0, alpha), 1.0 / alpha, 1e-12);
  EXPECT_NEAR(f_a_star(1.0, alpha), alpha, 1e-12);
  EXPECT_LT(f_a_star(0.2, alpha), f_a_star(0.8, alpha));
  EXPECT_THROW(f_a_star(0.5, 1.0), ContractViolation);
  EXPECT_THROW(f_a_star(-0.1, alpha), ContractViolation);
}

TEST(WprModel, BoundaryBehaviour) {
  // Equation 1's boundary cases from §IV.C.
  EXPECT_DOUBLE_EQ(wpr_model(0.0, 0.5, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(wpr_model(1.0, 0.5, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(wpr_model(0.5, 0.0, 1.0), 0.0);  // perfect tree
  // eps# = 1: WPR == f_b (random-pair regime).
  EXPECT_NEAR(wpr_model(0.37, 1.0, 1.0), 0.37, 1e-12);
}

TEST(WprModel, MonotoneInTreenessAndFb) {
  // Worse treeness -> higher WPR; higher f_b -> higher WPR.
  EXPECT_LT(wpr_model(0.3, 0.2, 1.0), wpr_model(0.3, 0.8, 1.0));
  EXPECT_LT(wpr_model(0.2, 0.5, 1.0), wpr_model(0.6, 0.5, 1.0));
}

TEST(WprModel, FaStarAmplifiesEpsilon) {
  // Larger f_a* strengthens the treeness effect (more pairs near b).
  EXPECT_LT(wpr_model(0.3, 0.4, 0.5), wpr_model(0.3, 0.4, 2.0));
}

TEST(WprModel, StaysInUnitInterval) {
  for (double fb : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    for (double es : {0.0, 0.3, 1.0}) {
      for (double fa : {0.3125, 1.0, 3.2}) {
        const double w = wpr_model(fb, es, fa);
        EXPECT_GE(w, 0.0);
        EXPECT_LE(w, 1.0);
      }
    }
  }
}

}  // namespace
}  // namespace bcc
