#include "tree/anchor_tree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/assert.h"

namespace bcc {
namespace {

/// Fixture building the paper-style chain/star mix:
///   0 -> {1, 2};  1 -> {3, 4};  2 -> {5}
class AnchorTreeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    t.set_root(0);
    t.add_child(0, 1);
    t.add_child(0, 2);
    t.add_child(1, 3);
    t.add_child(1, 4);
    t.add_child(2, 5);
  }
  AnchorTree t;
};

TEST_F(AnchorTreeFixture, BasicStructure) {
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.root(), 0u);
  EXPECT_EQ(t.parent_of(3), 1u);
  EXPECT_EQ(t.parent_of(0), AnchorTree::kNoParent);
  EXPECT_EQ(t.children_of(1), (std::vector<NodeId>{3, 4}));
  EXPECT_TRUE(t.children_of(5).empty());
}

TEST_F(AnchorTreeFixture, NeighborsAreParentPlusChildren) {
  auto nb = t.neighbors_of(1);
  std::sort(nb.begin(), nb.end());
  EXPECT_EQ(nb, (std::vector<NodeId>{0, 3, 4}));
  EXPECT_EQ(t.neighbors_of(0), (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(t.neighbors_of(5), (std::vector<NodeId>{2}));
}

TEST_F(AnchorTreeFixture, Degrees) {
  EXPECT_EQ(t.degree(0), 2u);
  EXPECT_EQ(t.degree(1), 3u);
  EXPECT_EQ(t.degree(5), 1u);
  EXPECT_EQ(t.max_degree(), 3u);
}

TEST_F(AnchorTreeFixture, Diameter) {
  EXPECT_EQ(t.diameter(), 4u);  // 3 -> 1 -> 0 -> 2 -> 5
}

TEST_F(AnchorTreeFixture, BfsOrderStartsAtRootAndCoversAll) {
  const auto order = t.bfs_order();
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(order.front(), 0u);
  auto sorted = order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<NodeId>{0, 1, 2, 3, 4, 5}));
}

TEST_F(AnchorTreeFixture, ReachableViaChildDirection) {
  auto r = t.reachable_via(0, 1);
  std::sort(r.begin(), r.end());
  EXPECT_EQ(r, (std::vector<NodeId>{1, 3, 4}));
}

TEST_F(AnchorTreeFixture, ReachableViaParentDirection) {
  auto r = t.reachable_via(1, 0);
  std::sort(r.begin(), r.end());
  EXPECT_EQ(r, (std::vector<NodeId>{0, 2, 5}));
}

TEST_F(AnchorTreeFixture, ReachableViaLeafSeesEverything) {
  auto r = t.reachable_via(5, 2);
  std::sort(r.begin(), r.end());
  EXPECT_EQ(r, (std::vector<NodeId>{0, 1, 2, 3, 4}));
}

TEST_F(AnchorTreeFixture, ReachableViaNonNeighborRejected) {
  EXPECT_THROW(t.reachable_via(0, 5), ContractViolation);
}

TEST(AnchorTree, EmptyAndSingleton) {
  AnchorTree t;
  EXPECT_TRUE(t.empty());
  EXPECT_THROW(t.root(), ContractViolation);
  t.set_root(9);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.diameter(), 0u);
  EXPECT_TRUE(t.neighbors_of(9).empty());
}

TEST(AnchorTree, SecondRootRejected) {
  AnchorTree t;
  t.set_root(0);
  EXPECT_THROW(t.set_root(1), ContractViolation);
}

TEST(AnchorTree, DuplicateChildRejected) {
  AnchorTree t;
  t.set_root(0);
  t.add_child(0, 1);
  EXPECT_THROW(t.add_child(0, 1), ContractViolation);
}

TEST(AnchorTree, UnknownParentRejected) {
  AnchorTree t;
  t.set_root(0);
  EXPECT_THROW(t.add_child(7, 1), ContractViolation);
}

TEST(AnchorTree, ChainDiameter) {
  AnchorTree t;
  t.set_root(0);
  for (NodeId i = 1; i < 10; ++i) t.add_child(i - 1, i);
  EXPECT_EQ(t.diameter(), 9u);
}

TEST(AnchorTree, StarDiameter) {
  AnchorTree t;
  t.set_root(0);
  for (NodeId i = 1; i < 10; ++i) t.add_child(0, i);
  EXPECT_EQ(t.diameter(), 2u);
  EXPECT_EQ(t.max_degree(), 9u);
}

}  // namespace
}  // namespace bcc
