#include "tree/weighted_tree.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace bcc {
namespace {

WeightedTree make_path_tree(const std::vector<double>& weights) {
  WeightedTree t;
  TreeVertex prev = t.add_vertex();
  for (double w : weights) {
    TreeVertex next = t.add_vertex();
    t.connect(prev, next, w);
    prev = next;
  }
  return t;
}

TEST(WeightedTree, EmptyAndSingletonAreTrees) {
  WeightedTree t;
  EXPECT_TRUE(t.is_tree());
  t.add_vertex();
  EXPECT_TRUE(t.is_tree());
  EXPECT_EQ(t.vertex_count(), 1u);
  EXPECT_EQ(t.edge_count(), 0u);
}

TEST(WeightedTree, ConnectAddsBothHalfEdges) {
  WeightedTree t;
  auto a = t.add_vertex(), b = t.add_vertex();
  t.connect(a, b, 3.0);
  EXPECT_EQ(t.degree(a), 1u);
  EXPECT_EQ(t.degree(b), 1u);
  EXPECT_EQ(t.edge_count(), 1u);
  EXPECT_DOUBLE_EQ(t.edge_weight(a, b).value(), 3.0);
  EXPECT_DOUBLE_EQ(t.edge_weight(b, a).value(), 3.0);
}

TEST(WeightedTree, CycleRejected) {
  WeightedTree t;
  auto a = t.add_vertex(), b = t.add_vertex(), c = t.add_vertex();
  t.connect(a, b, 1.0);
  t.connect(b, c, 1.0);
  EXPECT_THROW(t.connect(a, c, 1.0), ContractViolation);
}

TEST(WeightedTree, SelfLoopRejected) {
  WeightedTree t;
  auto a = t.add_vertex();
  EXPECT_THROW(t.connect(a, a, 1.0), ContractViolation);
}

TEST(WeightedTree, NegativeWeightRejected) {
  WeightedTree t;
  auto a = t.add_vertex(), b = t.add_vertex();
  EXPECT_THROW(t.connect(a, b, -1.0), ContractViolation);
}

TEST(WeightedTree, PathDistanceSumsWeights) {
  WeightedTree t = make_path_tree({1.0, 2.5, 3.0});
  EXPECT_DOUBLE_EQ(t.distance(0, 3), 6.5);
  EXPECT_DOUBLE_EQ(t.distance(1, 3), 5.5);
  EXPECT_DOUBLE_EQ(t.distance(2, 2), 0.0);
}

TEST(WeightedTree, PathEndpointsAndOrder) {
  WeightedTree t = make_path_tree({1, 1, 1});
  const auto p = t.path(0, 3);
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p.front(), 0u);
  EXPECT_EQ(p.back(), 3u);
  const auto rev = t.path(3, 0);
  EXPECT_EQ(rev.front(), 3u);
  EXPECT_EQ(rev.back(), 0u);
}

TEST(WeightedTree, PathOfSingleVertex) {
  WeightedTree t;
  auto a = t.add_vertex();
  EXPECT_EQ(t.path(a, a), std::vector<TreeVertex>{a});
}

TEST(WeightedTree, DisconnectedPathRejected) {
  WeightedTree t;
  t.add_vertex();
  t.add_vertex();
  EXPECT_THROW(t.path(0, 1), ContractViolation);
  EXPECT_FALSE(t.connected(0, 1));
}

TEST(WeightedTree, SplitEdgePreservesDistancesAndCreator) {
  WeightedTree t;
  auto a = t.add_vertex(), b = t.add_vertex();
  t.connect(a, b, 10.0, /*creator=*/7);
  const TreeVertex mid = t.split_edge(a, b, 4.0);
  EXPECT_DOUBLE_EQ(t.distance(a, b), 10.0);
  EXPECT_DOUBLE_EQ(t.distance(a, mid), 4.0);
  EXPECT_DOUBLE_EQ(t.distance(mid, b), 6.0);
  EXPECT_EQ(t.edge_creator(a, mid).value(), 7u);
  EXPECT_EQ(t.edge_creator(mid, b).value(), 7u);
  EXPECT_TRUE(t.is_tree());
}

TEST(WeightedTree, SplitClampsOutOfRangePositions) {
  WeightedTree t;
  auto a = t.add_vertex(), b = t.add_vertex();
  t.connect(a, b, 5.0);
  const TreeVertex m1 = t.split_edge(a, b, -2.0);
  EXPECT_DOUBLE_EQ(t.distance(a, m1), 0.0);
  const TreeVertex m2 = t.split_edge(m1, b, 100.0);
  EXPECT_DOUBLE_EQ(t.distance(m2, b), 0.0);
  EXPECT_DOUBLE_EQ(t.distance(a, b), 5.0);
}

TEST(WeightedTree, SplitMissingEdgeRejected) {
  WeightedTree t;
  auto a = t.add_vertex(), b = t.add_vertex(), c = t.add_vertex();
  t.connect(a, b, 1.0);
  EXPECT_THROW(t.split_edge(a, c, 0.5), ContractViolation);
}

TEST(WeightedTree, EdgeQueriesOnMissingEdge) {
  WeightedTree t;
  auto a = t.add_vertex(), b = t.add_vertex();
  EXPECT_FALSE(t.edge_weight(a, b).has_value());
  EXPECT_FALSE(t.edge_creator(a, b).has_value());
}

TEST(WeightedTree, DistancesFromComputesAll) {
  WeightedTree t = make_path_tree({2, 3});
  const auto d = t.distances_from(0);
  ASSERT_EQ(d.size(), 3u);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  EXPECT_DOUBLE_EQ(d[1], 2.0);
  EXPECT_DOUBLE_EQ(d[2], 5.0);
}

TEST(WeightedTree, DistancesFromUnreachableIsInfinite) {
  WeightedTree t;
  t.add_vertex();
  t.add_vertex();
  const auto d = t.distances_from(0);
  EXPECT_TRUE(std::isinf(d[1]));
  EXPECT_FALSE(t.is_tree());  // 2 components
}

TEST(WeightedTree, ScaleWeights) {
  WeightedTree t = make_path_tree({1, 2});
  t.scale_weights(3.0);
  EXPECT_DOUBLE_EQ(t.distance(0, 2), 9.0);
  EXPECT_THROW(t.scale_weights(0.0), ContractViolation);
}

TEST(WeightedTree, RandomSplitsKeepAllPairwiseDistances) {
  // Property: splitting edges anywhere never changes distances between the
  // original vertices.
  Rng rng(123);
  WeightedTree t;
  std::vector<TreeVertex> original;
  original.push_back(t.add_vertex());
  for (int i = 1; i < 12; ++i) {
    TreeVertex v = t.add_vertex();
    t.connect(original[static_cast<std::size_t>(rng.below(original.size()))],
              v, rng.uniform(0.5, 4.0));
    original.push_back(v);
  }
  std::vector<std::vector<double>> before(original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    before[i] = t.distances_from(original[i]);
  }
  // Split a few random existing edges.
  for (int s = 0; s < 6; ++s) {
    const TreeVertex u =
        static_cast<TreeVertex>(rng.below(t.vertex_count()));
    if (t.degree(u) == 0) continue;
    const auto& nb = t.neighbors(u);
    const auto& e = nb[static_cast<std::size_t>(rng.below(nb.size()))];
    t.split_edge(u, e.to, rng.uniform(0.0, e.weight));
  }
  for (std::size_t i = 0; i < original.size(); ++i) {
    const auto after = t.distances_from(original[i]);
    for (std::size_t j = 0; j < original.size(); ++j) {
      EXPECT_NEAR(after[original[j]], before[i][original[j]], 1e-9);
    }
  }
  EXPECT_TRUE(t.is_tree());
}

}  // namespace
}  // namespace bcc
