#include "tree/prediction_tree.h"

#include <gtest/gtest.h>

namespace bcc {
namespace {

TEST(GromovProduct, Definition) {
  // (x|y)_z = 0.5 (d(z,x) + d(z,y) - d(x,y))
  EXPECT_DOUBLE_EQ(gromov_product(20.0, 25.0, 15.0), 15.0);
  EXPECT_DOUBLE_EQ(gromov_product(1.0, 1.0, 2.0), 0.0);
}

TEST(PredictionTree, FirstHostIsRoot) {
  PredictionTree t;
  t.add_first(5);
  EXPECT_TRUE(t.contains(5));
  EXPECT_EQ(t.root_host(), 5u);
  EXPECT_EQ(t.host_count(), 1u);
  EXPECT_DOUBLE_EQ(t.distance(5, 5), 0.0);
  EXPECT_EQ(t.placement_of(5).anchor, kNoAnchor);
}

TEST(PredictionTree, SecondHostConnectsDirectly) {
  PredictionTree t;
  t.add_first(0);
  const auto p = t.add_second(1, 25.0);
  EXPECT_DOUBLE_EQ(t.distance(0, 1), 25.0);
  EXPECT_EQ(p.anchor, 0u);
  EXPECT_DOUBLE_EQ(p.anchor_offset, 0.0);
  EXPECT_DOUBLE_EQ(p.leaf_weight, 25.0);
}

TEST(PredictionTree, ThirdHostGromovPlacement) {
  // Paper Fig. 1 style: d(0,1)=25, d(0,2)=20, d(1,2)=15.
  PredictionTree t;
  t.add_first(0);
  t.add_second(1, 25.0);
  const auto p = t.add(2, /*z=*/0, /*y=*/1, 20.0, 25.0, 15.0);
  EXPECT_DOUBLE_EQ(t.distance(0, 2), 20.0);
  EXPECT_DOUBLE_EQ(t.distance(1, 2), 15.0);
  EXPECT_DOUBLE_EQ(t.distance(0, 1), 25.0);
  // t_2 lands on the edge created by host 1 -> anchor is 1, 10 from 1's leaf.
  EXPECT_EQ(p.anchor, 1u);
  EXPECT_DOUBLE_EQ(p.anchor_offset, 10.0);
  EXPECT_DOUBLE_EQ(p.leaf_weight, 5.0);
  EXPECT_TRUE(t.check_invariants());
}

TEST(PredictionTree, FourthHostAnchorsToThird) {
  PredictionTree t;
  t.add_first(0);
  t.add_second(1, 25.0);
  t.add(2, 0, 1, 20.0, 25.0, 15.0);
  // Host 3 very close to host 2: its inner vertex should land on 2's leaf
  // edge, making 2 its anchor.
  const auto p = t.add(3, /*z=*/0, /*y=*/2, 19.0, 20.0, 3.0);
  // (3|2)_0 = 0.5(19+20-3) = 18 -> on host 2's leaf edge (spans 15..20).
  EXPECT_EQ(p.anchor, 2u);
  EXPECT_DOUBLE_EQ(t.distance(0, 3), 19.0);
  EXPECT_DOUBLE_EQ(t.distance(2, 3), 3.0);
}

TEST(PredictionTree, LeavesKeepDegreeOne) {
  PredictionTree t;
  t.add_first(0);
  t.add_second(1, 10.0);
  t.add(2, 0, 1, 8.0, 10.0, 6.0);
  t.add(3, 0, 2, 7.0, 8.0, 5.0);
  t.add(4, 0, 1, 9.0, 10.0, 7.0);
  for (NodeId h = 0; h < 5; ++h) {
    EXPECT_EQ(t.tree().degree(t.leaf_of(h)), 1u) << "host " << h;
  }
  EXPECT_TRUE(t.check_invariants());
}

TEST(PredictionTree, GromovClampingHandlesTriangleViolations) {
  PredictionTree t;
  t.add_first(0);
  t.add_second(1, 10.0);
  // d(0,2)=1, d(1,2)=30 wildly violates the triangle inequality vs d(0,1)=10.
  // Gromov product is negative -> clamp to 0; leaf weight positive.
  const auto p = t.add(2, 0, 1, 1.0, 10.0, 30.0);
  EXPECT_GE(p.anchor_offset, 0.0);
  EXPECT_GE(p.leaf_weight, 0.0);
  EXPECT_TRUE(t.check_invariants());
  // Distance to base is preserved only when geometry permits; must be finite
  // and non-negative regardless.
  EXPECT_GE(t.distance(0, 2), 0.0);
  EXPECT_GE(t.distance(1, 2), 0.0);
}

TEST(PredictionTree, GromovBeyondPathClamped) {
  PredictionTree t;
  t.add_first(0);
  t.add_second(1, 10.0);
  // (2|1)_0 = 0.5(50+10-30) = 15 > path length 10 -> clamped to the y end.
  const auto p = t.add(2, 0, 1, 50.0, 10.0, 30.0);
  EXPECT_LE(p.anchor_offset, 10.0 + 1e-12);
  EXPECT_TRUE(t.check_invariants());
}

TEST(PredictionTree, ZeroDistancePairEmbeds) {
  PredictionTree t;
  t.add_first(0);
  t.add_second(1, 10.0);
  t.add(2, 0, 1, 10.0, 10.0, 0.0);  // host 2 coincides with host 1
  EXPECT_DOUBLE_EQ(t.distance(1, 2), 0.0);
  EXPECT_DOUBLE_EQ(t.distance(0, 2), 10.0);
  EXPECT_TRUE(t.check_invariants());
}

TEST(PredictionTree, PredictedBandwidthUsesRationalTransform) {
  PredictionTree t;
  t.add_first(0);
  t.add_second(1, 20.0);
  EXPECT_DOUBLE_EQ(t.predicted_bandwidth(0, 1, 1000.0), 50.0);
}

TEST(PredictionTree, PredictedDistancesMatrixMatchesPairQueries) {
  PredictionTree t;
  t.add_first(0);
  t.add_second(1, 25.0);
  t.add(2, 0, 1, 20.0, 25.0, 15.0);
  t.add(3, 0, 2, 19.0, 20.0, 3.0);
  const DistanceMatrix d = t.predicted_distances();
  ASSERT_EQ(d.size(), 4u);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = u + 1; v < 4; ++v) {
      EXPECT_NEAR(d.at(u, v), t.distance(u, v), 1e-12);
    }
  }
}

TEST(PredictionTree, ContractViolations) {
  PredictionTree t;
  EXPECT_THROW(t.root_host(), ContractViolation);
  t.add_first(0);
  EXPECT_THROW(t.add_first(1), ContractViolation);     // only one first
  EXPECT_THROW(t.add(2, 0, 1, 1, 1, 1), ContractViolation);  // needs >= 2
  t.add_second(1, 5.0);
  EXPECT_THROW(t.add_second(2, 5.0), ContractViolation);  // only one second
  EXPECT_THROW(t.add(1, 0, 1, 1, 1, 1), ContractViolation);  // already present
  EXPECT_THROW(t.add(2, 0, 0, 1, 1, 1), ContractViolation);  // z == y
  EXPECT_THROW(t.add(2, 0, 9, 1, 1, 1), ContractViolation);  // y unknown
  EXPECT_THROW(t.distance(0, 42), ContractViolation);
  EXPECT_THROW(t.placement_of(42), ContractViolation);
}

TEST(PredictionTree, NegativeMeasurementRejected) {
  PredictionTree t;
  t.add_first(0);
  EXPECT_THROW(t.add_second(1, -1.0), ContractViolation);
  t.add_second(1, 5.0);
  EXPECT_THROW(t.add(2, 0, 1, -1.0, 5.0, 3.0), ContractViolation);
}

}  // namespace
}  // namespace bcc
