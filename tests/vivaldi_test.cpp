#include "vivaldi/vivaldi.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace bcc {
namespace {

TEST(Vivaldi, ConstructionValidatesOptions) {
  Rng rng(1);
  VivaldiOptions bad;
  bad.ce = 0.0;
  EXPECT_THROW(Vivaldi(3, rng, bad), ContractViolation);
  bad = VivaldiOptions{};
  bad.cc = 1.5;
  EXPECT_THROW(Vivaldi(3, rng, bad), ContractViolation);
}

TEST(Vivaldi, EmbedsExact2dPointSetsWell) {
  // Ground truth already lives in 2-D: Vivaldi should recover it to low
  // error (rotation/translation-invariant distances).
  Rng rng(2);
  const auto points = testutil::random_points(30, rng, 50.0);
  const DistanceMatrix target = testutil::euclidean_metric(points);
  Rng vrng(3);
  VivaldiOptions options;
  options.rounds = 80;
  Vivaldi v(30, vrng, options);
  v.run(target);
  EXPECT_LT(v.median_relative_error(target), 0.12);
}

TEST(Vivaldi, ErrorDecreasesWithTraining) {
  Rng rng(4);
  const auto points = testutil::random_points(25, rng, 50.0);
  const DistanceMatrix target = testutil::euclidean_metric(points);
  VivaldiOptions short_run;
  short_run.rounds = 2;
  VivaldiOptions long_run;
  long_run.rounds = 60;
  Rng r1(5), r2(5);
  Vivaldi a(25, r1, short_run), b(25, r2, long_run);
  a.run(target);
  b.run(target);
  EXPECT_LT(b.median_relative_error(target), a.median_relative_error(target));
}

TEST(Vivaldi, NodeErrorEstimatesShrink) {
  Rng rng(6);
  const auto points = testutil::random_points(20, rng, 50.0);
  const DistanceMatrix target = testutil::euclidean_metric(points);
  Rng vrng(7);
  Vivaldi v(20, vrng, {});
  const double before = v.error(0);
  v.run(target);
  EXPECT_LT(v.error(0), before);
}

TEST(Vivaldi, ObserveMovesTowardsTarget) {
  Rng rng(8);
  Vivaldi v(2, rng, {});
  const double initial = v.distance(0, 1);
  for (int i = 0; i < 200; ++i) {
    v.observe(0, 1, 10.0);
    v.observe(1, 0, 10.0);
  }
  EXPECT_LT(std::abs(v.distance(0, 1) - 10.0), std::abs(initial - 10.0));
  EXPECT_NEAR(v.distance(0, 1), 10.0, 1.0);
}

TEST(Vivaldi, ObserveValidatesArguments) {
  Rng rng(9);
  Vivaldi v(3, rng, {});
  EXPECT_THROW(v.observe(0, 0, 1.0), ContractViolation);
  EXPECT_THROW(v.observe(0, 5, 1.0), ContractViolation);
  EXPECT_THROW(v.observe(0, 1, -1.0), ContractViolation);
}

TEST(Vivaldi, ZeroDistanceSampleIsIgnored) {
  Rng rng(10);
  Vivaldi v(2, rng, {});
  const Coord before = v.coord(0);
  v.observe(0, 1, 0.0);
  EXPECT_DOUBLE_EQ(v.coord(0).x, before.x);
  EXPECT_DOUBLE_EQ(v.coord(0).y, before.y);
}

TEST(Vivaldi, PredictedDistancesSymmetricZeroDiagonal) {
  Rng rng(11);
  const auto points = testutil::random_points(10, rng, 20.0);
  const DistanceMatrix target = testutil::euclidean_metric(points);
  Rng vrng(12);
  Vivaldi v(10, vrng, {});
  v.run(target);
  const DistanceMatrix pred = v.predicted_distances();
  for (NodeId i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(pred.at(i, i), 0.0);
    for (NodeId j = 0; j < 10; ++j) {
      EXPECT_DOUBLE_EQ(pred.at(i, j), pred.at(j, i));
    }
  }
}

TEST(Vivaldi, TrivialPopulations) {
  Rng rng(13);
  Vivaldi v1(1, rng, {});
  v1.run(DistanceMatrix(1));  // no peers: run is a no-op
  Vivaldi v0(0, rng, {});
  v0.run(DistanceMatrix(0));
  EXPECT_EQ(v0.size(), 0u);
}

TEST(Vivaldi, MismatchedTargetRejected) {
  Rng rng(14);
  Vivaldi v(5, rng, {});
  EXPECT_THROW(v.run(DistanceMatrix(4)), ContractViolation);
  EXPECT_THROW(v.median_relative_error(DistanceMatrix(4)), ContractViolation);
}

TEST(Vivaldi, EmbedHelperMatchesManualPipeline) {
  Rng rng(15);
  const auto points = testutil::random_points(12, rng, 30.0);
  const DistanceMatrix target = testutil::euclidean_metric(points);
  Rng r1(16), r2(16);
  VivaldiOptions options;
  options.rounds = 10;
  const DistanceMatrix a = vivaldi_embed(target, r1, options);
  Vivaldi v(12, r2, options);
  v.run(target);
  const DistanceMatrix b = v.predicted_distances();
  for (NodeId i = 0; i < 12; ++i) {
    for (NodeId j = i + 1; j < 12; ++j) {
      EXPECT_DOUBLE_EQ(a.at(i, j), b.at(i, j));
    }
  }
}

TEST(VivaldiHeight, HeightsStayNonNegative) {
  Rng rng(20);
  VivaldiOptions options;
  options.use_height = true;
  Vivaldi v(10, rng, options);
  const DistanceMatrix target = testutil::random_tree_metric(10, rng);
  v.run(target);
  for (NodeId i = 0; i < 10; ++i) EXPECT_GE(v.coord(i).h, 0.0);
}

TEST(VivaldiHeight, DistanceIncludesBothHeights) {
  Rng rng(21);
  VivaldiOptions options;
  options.use_height = true;
  Vivaldi v(2, rng, options);
  for (int i = 0; i < 400; ++i) {
    v.observe(0, 1, 30.0);
    v.observe(1, 0, 30.0);
  }
  EXPECT_NEAR(v.distance(0, 1), 30.0, 3.0);
  EXPECT_GE(v.distance(0, 1),
            euclidean(v.coord(0), v.coord(1)) - 1e-12);
}

TEST(VivaldiHeight, HelpsOnAccessLinkDominatedMetrics) {
  // Tree metrics built from access-link bottlenecks have a per-node additive
  // component that heights capture but a plane cannot.
  Rng data_rng(22);
  const DistanceMatrix tree = testutil::random_tree_metric(40, data_rng);
  VivaldiOptions flat;
  flat.rounds = 60;
  VivaldiOptions tall = flat;
  tall.use_height = true;
  Rng r1(23), r2(23);
  Vivaldi vf(40, r1, flat), vh(40, r2, tall);
  vf.run(tree);
  vh.run(tree);
  EXPECT_LT(vh.median_relative_error(tree),
            vf.median_relative_error(tree) * 1.10);  // at least comparable
}

TEST(VivaldiHeight, FlatModeIgnoresHeightField) {
  Rng rng(24);
  Vivaldi v(3, rng, {});  // use_height = false
  const DistanceMatrix target = testutil::random_tree_metric(3, rng);
  v.run(target);
  EXPECT_DOUBLE_EQ(v.distance(0, 1), euclidean(v.coord(0), v.coord(1)));
}

TEST(Vivaldi, TreeMetricEmbedsWorseThanEuclideanData) {
  // The motivating observation of the paper: bandwidth-like (tree) metrics
  // fit 2-D Euclidean space worse than genuinely Euclidean data.
  Rng data_rng(17);
  const auto points = testutil::random_points(40, data_rng, 50.0);
  const DistanceMatrix eucl = testutil::euclidean_metric(points);
  const DistanceMatrix tree = testutil::random_tree_metric(40, data_rng);
  VivaldiOptions options;
  options.rounds = 60;
  Rng r1(18), r2(18);
  Vivaldi ve(40, r1, options), vt(40, r2, options);
  ve.run(eucl);
  vt.run(tree);
  EXPECT_LT(ve.median_relative_error(eucl), vt.median_relative_error(tree));
}

}  // namespace
}  // namespace bcc
