// Transport seam tests: wire-format golden bytes + decode hardening,
// SimTransport determinism, TcpTransport loopback behavior (reconnect,
// queue shedding, half-open detection), and a TSan-targeted test where
// EventEngine timer cancellation races transport-driven retries across two
// pump threads (tools/sanitize.sh reruns Transport*/Net* under TSan).
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/sim_transport.h"
#include "net/tcp_transport.h"
#include "sim/fault.h"

namespace bcc {
namespace {

using net::DecodeResult;
using net::DecodeStatus;
using net::Delivery;
using net::FrameType;

obs::TraceContext golden_trace() {
  return {0x1122334455667788ull, 0x99aabbccddeeff00ull, 7u};
}

net::ExchangePayload golden_payload() {
  net::ExchangePayload p;
  p.exchange = 42;
  p.prop_node = {1, 2, 5};
  p.prop_crt = {3, 2, 1};
  return p;
}

std::vector<std::uint8_t> golden_frame_bytes() {
  return net::encode_frame(FrameType::kExchange, 3, 9, golden_trace(),
                           net::encode_exchange(golden_payload()));
}

double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// -- Wire format -----------------------------------------------------------

TEST(NetFrame, GoldenBytesMatchCommittedFixture) {
  const std::vector<std::uint8_t> wire = golden_frame_bytes();

  // Fixed header offsets are wire contract (magic/version/length must stay
  // put across ALL major versions — that is what makes unknown majors
  // skippable). Check them field by field before the byte-exact fixture.
  ASSERT_GE(wire.size(), net::kFrameHeaderBytes);
  const auto u32_at = [&](std::size_t off) {
    return static_cast<std::uint32_t>(wire[off]) |
           (static_cast<std::uint32_t>(wire[off + 1]) << 8) |
           (static_cast<std::uint32_t>(wire[off + 2]) << 16) |
           (static_cast<std::uint32_t>(wire[off + 3]) << 24);
  };
  EXPECT_EQ(u32_at(0), net::kFrameMagic);
  EXPECT_EQ(wire[4], net::kWireVersionMajor);
  EXPECT_EQ(wire[5], net::kWireVersionMinor);
  EXPECT_EQ(wire[6], static_cast<std::uint8_t>(FrameType::kExchange));
  EXPECT_EQ(wire[7], 0u);  // flags reserved
  EXPECT_EQ(u32_at(8), 3u);
  EXPECT_EQ(u32_at(12), 9u);
  EXPECT_EQ(u32_at(16), wire.size() - net::kFrameHeaderBytes);
  EXPECT_EQ(wire.size(), net::frame_wire_bytes(
                             net::encode_exchange(golden_payload()).size()));

  // Byte-exact against the committed fixture: any codec change that moves
  // bytes must consciously regenerate tests/data/frame_golden.bin (and bump
  // the wire version when the change is not additive).
  std::ifstream in(std::string(BCC_TEST_DATA_DIR) + "/frame_golden.bin",
                   std::ios::binary);
  ASSERT_TRUE(in) << "missing tests/data/frame_golden.bin";
  std::vector<std::uint8_t> fixture(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_EQ(wire, fixture);
}

TEST(NetFrame, ExchangeRoundtrip) {
  const std::vector<std::uint8_t> wire = golden_frame_bytes();
  const DecodeResult r = net::decode_frame(wire.data(), wire.size());
  ASSERT_EQ(r.status, DecodeStatus::kOk);
  EXPECT_EQ(r.consumed, wire.size());
  EXPECT_EQ(r.frame.type, FrameType::kExchange);
  EXPECT_EQ(r.frame.src, 3u);
  EXPECT_EQ(r.frame.dst, 9u);
  EXPECT_EQ(r.frame.trace.trace_id, golden_trace().trace_id);
  EXPECT_EQ(r.frame.trace.parent_span, golden_trace().parent_span);
  EXPECT_EQ(r.frame.trace.hop, golden_trace().hop);

  net::ExchangePayload p;
  ASSERT_TRUE(
      net::decode_exchange(r.frame.body.data(), r.frame.body.size(), p));
  EXPECT_EQ(p.exchange, 42u);
  EXPECT_EQ(p.prop_node, golden_payload().prop_node);
  EXPECT_EQ(p.prop_crt, golden_payload().prop_crt);
}

TEST(NetFrame, EveryTruncationNeedsMore) {
  const std::vector<std::uint8_t> wire = golden_frame_bytes();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const DecodeResult r = net::decode_frame(wire.data(), len);
    EXPECT_EQ(r.status, DecodeStatus::kNeedMore) << "len=" << len;
    EXPECT_EQ(r.consumed, 0u) << "len=" << len;
  }
}

TEST(NetFrame, BadMagicIsFatalForTheStream) {
  std::vector<std::uint8_t> wire = golden_frame_bytes();
  wire[0] ^= 0xff;
  const DecodeResult r = net::decode_frame(wire.data(), wire.size());
  EXPECT_EQ(r.status, DecodeStatus::kBadMagic);
}

TEST(NetFrame, OversizedPayloadIsRejectedWithoutAllocating) {
  std::vector<std::uint8_t> header = golden_frame_bytes();
  header.resize(net::kFrameHeaderBytes);
  const std::uint32_t huge = net::kMaxFramePayload + 1;
  for (std::size_t i = 0; i < 4; ++i) {
    header[16 + i] = static_cast<std::uint8_t>(huge >> (8 * i));
  }
  const DecodeResult r = net::decode_frame(header.data(), header.size());
  EXPECT_EQ(r.status, DecodeStatus::kTooLarge);
}

TEST(NetFrame, UnknownMajorIsSkippedAndStreamResyncs) {
  // [bad-major frame][good frame] in one buffer: the decoder must report
  // kBadVersion with consumed == the full bad frame, so the next decode
  // lands exactly on the good frame.
  std::vector<std::uint8_t> bad = golden_frame_bytes();
  bad[4] = net::kWireVersionMajor + 1;
  const std::size_t bad_size = bad.size();
  std::vector<std::uint8_t> stream = bad;
  const std::vector<std::uint8_t> good = golden_frame_bytes();
  stream.insert(stream.end(), good.begin(), good.end());

  const DecodeResult r1 = net::decode_frame(stream.data(), stream.size());
  ASSERT_EQ(r1.status, DecodeStatus::kBadVersion);
  ASSERT_EQ(r1.consumed, bad_size);
  const DecodeResult r2 = net::decode_frame(stream.data() + r1.consumed,
                                            stream.size() - r1.consumed);
  ASSERT_EQ(r2.status, DecodeStatus::kOk);
  EXPECT_EQ(r2.frame.src, 3u);

  // A truncated unknown-major frame still waits for bytes: version is only
  // judged once the whole frame is buffered, keeping resync a plain skip.
  const DecodeResult r3 = net::decode_frame(bad.data(), bad.size() - 1);
  EXPECT_EQ(r3.status, DecodeStatus::kNeedMore);
}

TEST(NetFrame, CorruptExchangeBodiesAreRejected) {
  const std::vector<std::uint8_t> body =
      net::encode_exchange(golden_payload());
  net::ExchangePayload p;
  EXPECT_FALSE(net::decode_exchange(body.data(), body.size() - 1, p));
  std::vector<std::uint8_t> padded = body;
  padded.push_back(0);  // trailing garbage
  EXPECT_FALSE(net::decode_exchange(padded.data(), padded.size(), p));
  std::uint64_t v = 0;
  EXPECT_FALSE(net::decode_u64(body.data(), 7, v));
}

// -- EventEngine support used by the real-time pump ------------------------

TEST(NetEventEngine, NextEventTimeSkipsCancelledAndReportsDrained) {
  EventEngine engine;
  EXPECT_EQ(engine.next_event_time(), kNoNextEvent);
  const TimerId early = engine.schedule_at(5.0, [] {});
  engine.schedule_at(10.0, [] {});
  EXPECT_DOUBLE_EQ(engine.next_event_time(), 5.0);
  EXPECT_TRUE(engine.cancel(early));
  EXPECT_DOUBLE_EQ(engine.next_event_time(), 10.0);
  engine.run();
  EXPECT_EQ(engine.next_event_time(), kNoNextEvent);
}

// -- SimTransport ----------------------------------------------------------

TEST(SimTransport, DeliversDecodedFramesWithTrace) {
  EventEngine engine;
  net::SimTransport t(&engine, nullptr, [](NodeId, NodeId) { return 0.01; });
  std::vector<Delivery> got;
  t.set_handler([&](const Delivery& d) { got.push_back(d); });

  const auto before = net::NetMetrics::global().frames_sent.value();
  t.send(0, 1, FrameType::kExchange, net::encode_exchange(golden_payload()),
         golden_trace());
  t.send(1, 0, FrameType::kAck, net::encode_u64(42), {});
  engine.run();

  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].from, 0u);
  EXPECT_EQ(got[0].to, 1u);
  EXPECT_EQ(got[0].type, FrameType::kExchange);
  EXPECT_EQ(got[0].trace.trace_id, golden_trace().trace_id);
  net::ExchangePayload p;
  ASSERT_TRUE(net::decode_exchange(got[0].body.data(), got[0].body.size(), p));
  EXPECT_EQ(p.prop_node, golden_payload().prop_node);
  EXPECT_EQ(got[1].type, FrameType::kAck);
  EXPECT_EQ(net::NetMetrics::global().frames_sent.value(), before + 2);
}

TEST(SimTransport, FaultPlanReplayIsDeterministicPerSeed) {
  // Same plan seed => identical delivery sequence (ids AND order), even with
  // drops, duplicates and reordering jitter. This is the property the
  // `ctest -L chaos` suite leans on after the Transport refactor.
  const auto run_once = [](std::uint64_t seed) {
    EventEngine engine;
    FaultPlan plan(seed);
    LinkFaults faults;
    faults.drop_prob = 0.3;
    faults.duplicate_prob = 0.3;
    faults.jitter_max = 0.05;
    plan.set_default_faults(faults);
    net::SimTransport t(&engine, &plan,
                        [](NodeId, NodeId) { return 0.01; });
    std::vector<std::uint64_t> delivered;
    t.set_handler([&](const Delivery& d) {
      std::uint64_t v = 0;
      ASSERT_TRUE(net::decode_u64(d.body.data(), d.body.size(), v));
      delivered.push_back(v);
    });
    for (std::uint64_t i = 0; i < 60; ++i) {
      t.send(0, 1, FrameType::kAck, net::encode_u64(i), {});
    }
    engine.run();
    return delivered;
  };
  const auto a = run_once(7), b = run_once(7), c = run_once(8);
  EXPECT_EQ(a, b);
  EXPECT_LT(a.size(), 120u);  // drops happened
  EXPECT_NE(a, c);            // a different seed is a different schedule
}

// -- TcpTransport loopback -------------------------------------------------

net::TcpTransportOptions fast_tcp_options(NodeId local,
                                          std::uint16_t base_port) {
  net::TcpTransportOptions o;
  o.local = local;
  o.peers.resize(2);
  o.peers[0].port = base_port;
  o.peers[1].port = static_cast<std::uint16_t>(base_port + 1);
  o.heartbeat_period = 0.05;
  o.heartbeat_timeout = 0.25;
  o.connect_timeout = 0.3;
  o.backoff_initial = 0.02;
  o.backoff_max = 0.1;
  o.seed = 17 + local;
  return o;
}

/// Two transports (nodes 0 and 1) listening on a pid-derived, re-rolled
/// port pair — safe under parallel ctest harnesses.
struct TcpPair {
  std::unique_ptr<net::TcpTransport> a, b;
  std::uint16_t base_port = 0;

  static TcpPair make(std::uint32_t salt) {
    TcpPair pair;
    for (std::uint32_t attempt = 0; attempt < 20; ++attempt) {
      const std::uint32_t mix =
          static_cast<std::uint32_t>(::getpid()) * 131u + salt * 7001u +
          attempt * 977u;
      pair.base_port = static_cast<std::uint16_t>(21000u + mix % 40000u);
      pair.a = std::make_unique<net::TcpTransport>(
          fast_tcp_options(0, pair.base_port));
      pair.b = std::make_unique<net::TcpTransport>(
          fast_tcp_options(1, pair.base_port));
      if (pair.a->listen() && pair.b->listen()) return pair;
    }
    ADD_FAILURE() << "no free port pair after 20 attempts";
    return pair;
  }

  bool pump_until(const std::function<bool()>& done, double seconds) {
    const double until = wall_seconds() + seconds;
    while (wall_seconds() < until) {
      a->poll_once(0.003);
      b->poll_once(0.003);
      if (done()) return true;
    }
    return done();
  }
};

TEST(TcpTransport, LoopbackDeliveryPreservesFrameAndTrace) {
  TcpPair pair = TcpPair::make(1);
  ASSERT_TRUE(pair.a && pair.b);
  std::vector<Delivery> got;
  pair.a->set_handler([](const Delivery&) {});
  pair.b->set_handler([&](const Delivery& d) { got.push_back(d); });

  pair.a->send(0, 1, FrameType::kExchange,
               net::encode_exchange(golden_payload()), golden_trace());
  ASSERT_TRUE(pair.pump_until([&] { return !got.empty(); }, 5.0));
  EXPECT_EQ(got[0].from, 0u);
  EXPECT_EQ(got[0].to, 1u);
  EXPECT_EQ(got[0].trace.trace_id, golden_trace().trace_id);
  EXPECT_EQ(got[0].trace.hop, golden_trace().hop);
  net::ExchangePayload p;
  ASSERT_TRUE(net::decode_exchange(got[0].body.data(), got[0].body.size(), p));
  EXPECT_EQ(p.exchange, 42u);
  EXPECT_TRUE(pair.a->connected_to(1));
}

TEST(TcpTransport, UnknownMajorFrameIsCountedAndStreamContinues) {
  TcpPair pair = TcpPair::make(2);
  ASSERT_TRUE(pair.a && pair.b);
  std::vector<Delivery> got;
  pair.b->set_handler([&](const Delivery& d) { got.push_back(d); });

  // A raw client (a "future-major peer") writes one unknown-major frame
  // followed by a current-version frame on the same connection.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(pair.base_port + 1));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::vector<std::uint8_t> stream = golden_frame_bytes();
  stream[4] = net::kWireVersionMajor + 3;
  const std::vector<std::uint8_t> good = net::encode_frame(
      FrameType::kExchange, 0, 1, {}, net::encode_exchange(golden_payload()));
  stream.insert(stream.end(), good.begin(), good.end());

  const auto rejected_before =
      net::NetMetrics::global().frames_rejected_version.value();
  ASSERT_EQ(::send(fd, stream.data(), stream.size(), 0),
            static_cast<ssize_t>(stream.size()));
  ASSERT_TRUE(pair.pump_until([&] { return !got.empty(); }, 5.0));
  ::close(fd);

  // The bad frame was skipped and counted — never delivered, never fatal.
  EXPECT_EQ(net::NetMetrics::global().frames_rejected_version.value(),
            rejected_before + 1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].from, 0u);
}

TEST(TcpTransport, ReconnectsAfterIsolationAndCountsIt) {
  TcpPair pair = TcpPair::make(3);
  ASSERT_TRUE(pair.a && pair.b);
  std::atomic<std::size_t> delivered{0};
  pair.b->set_handler([&](const Delivery&) { delivered.fetch_add(1); });
  pair.a->set_handler([](const Delivery&) {});

  pair.a->send(0, 1, FrameType::kAck, net::encode_u64(1), {});
  ASSERT_TRUE(pair.pump_until([&] { return delivered.load() >= 1; }, 5.0));

  const auto reconnects_before =
      net::NetMetrics::global().reconnects.value();
  // Full partition of node 1, long enough for node 0 to notice, then heal.
  pair.b->set_isolated(true);
  pair.pump_until([&] { return !pair.a->connected_to(1); }, 5.0);
  EXPECT_FALSE(pair.a->connected_to(1));
  pair.b->set_isolated(false);

  pair.a->send(0, 1, FrameType::kAck, net::encode_u64(2), {});
  ASSERT_TRUE(pair.pump_until([&] { return delivered.load() >= 2; }, 10.0));
  EXPECT_GT(net::NetMetrics::global().reconnects.value(), reconnects_before);
}

TEST(TcpTransport, HalfOpenPeerIsDetectedByHeartbeatTimeout) {
  TcpPair pair = TcpPair::make(4);
  ASSERT_TRUE(pair.a && pair.b);
  std::atomic<std::size_t> delivered{0};
  pair.b->set_handler([&](const Delivery&) { delivered.fetch_add(1); });
  pair.a->set_handler([](const Delivery&) {});
  pair.a->send(0, 1, FrameType::kAck, net::encode_u64(1), {});
  ASSERT_TRUE(pair.pump_until([&] { return delivered.load() >= 1; }, 5.0));

  // Node 1 goes silent without closing anything (a SIGSTOPped process: the
  // kernel still ACKs, the application never echoes heartbeats). Node 0
  // must declare the connection half-open within the heartbeat timeout.
  const auto half_open_before =
      net::NetMetrics::global().half_open_detected.value();
  const double until = wall_seconds() + 5.0;
  while (wall_seconds() < until &&
         net::NetMetrics::global().half_open_detected.value() ==
             half_open_before) {
    pair.a->poll_once(0.003);  // b deliberately not pumped
  }
  EXPECT_GT(net::NetMetrics::global().half_open_detected.value(),
            half_open_before);
}

TEST(TcpTransport, BoundedQueueShedsNewestOnOverflow) {
  // Peer 1's port has no listener: every send queues behind a dial that
  // keeps failing into backoff. The queue must stay bounded and the
  // overflow must be counted, newest-first.
  net::TcpTransportOptions o = fast_tcp_options(0, 1);  // port 2 is closed
  for (std::uint32_t attempt = 0; attempt < 20; ++attempt) {
    const std::uint32_t mix = static_cast<std::uint32_t>(::getpid()) * 131u +
                              5u * 7001u + attempt * 977u;
    o.peers[0].port = static_cast<std::uint16_t>(21000u + mix % 40000u);
    o.max_queue_bytes = 4096;
    net::TcpTransport t(o);
    if (!t.listen()) continue;
    t.set_handler([](const Delivery&) {});
    const auto dropped_before =
        net::NetMetrics::global().frames_dropped.value();
    const std::vector<std::uint8_t> body =
        net::encode_exchange(golden_payload());
    for (int i = 0; i < 200; ++i) {
      t.send(0, 1, FrameType::kExchange, body, {});
      t.poll_once(0.0);
    }
    EXPECT_GT(net::NetMetrics::global().frames_dropped.value(),
              dropped_before);
    EXPECT_LE(t.queued_bytes(1), o.max_queue_bytes);
    return;
  }
  ADD_FAILURE() << "no free port after 20 attempts";
}

// -- Cancellation vs transport-driven retries (TSan target) ----------------

TEST(TransportRace, TimerCancellationRacesTransportRetries) {
  // Two real pump threads, each owning its node's EventEngine + transport
  // (the ProcessNode contract: protocol state is thread-confined). What IS
  // shared across the threads — the global bcc.net.* instruments, the codec,
  // the sockets — must stay race-free while retry timers fire, get
  // cancelled, and re-arm against live transport traffic. tools/sanitize.sh
  // reruns this under TSan.
  TcpPair pair = TcpPair::make(6);
  ASSERT_TRUE(pair.a && pair.b);
  std::atomic<std::size_t> delivered{0};

  const auto worker = [&](net::TcpTransport& self, NodeId me, NodeId peer,
                          std::uint64_t seed) {
    EventEngine engine;
    Rng rng(seed);
    self.set_handler([&](const Delivery&) { delivered.fetch_add(1); });
    const double t0 = wall_seconds();
    TimerId pending = kNoTimer;
    std::uint64_t sent = 0;
    std::function<void()> arm = [&] {
      pending = engine.schedule_after(0.004, [&] {
        self.send(me, peer, FrameType::kAck, net::encode_u64(++sent), {});
        arm();
      });
    };
    arm();
    while (wall_seconds() - t0 < 0.6) {
      engine.run_until(wall_seconds() - t0);
      // The race under test: cancel the pending retry while deliveries are
      // in flight, then re-arm — the pattern ack timeouts follow when a
      // late ack beats the retry timer.
      if (rng.below(4) == 0 && engine.cancel(pending)) arm();
      self.poll_once(0.002);
    }
  };

  std::thread ta([&] { worker(*pair.a, 0, 1, 11); });
  std::thread tb([&] { worker(*pair.b, 1, 0, 22); });
  ta.join();
  tb.join();
  EXPECT_GT(delivered.load(), 0u);
}

}  // namespace
}  // namespace bcc
