// Streaming re-clustering under time-varying bandwidth: the incremental
// repair path (dirty dynamics -> FrameworkMaintainer::refresh_dirty ->
// DecentralizedClusterSystem::apply_delta) must land on the exact fixpoint a
// from-scratch recompute reaches, the new disturbance generators must be
// deterministic and local, and dynamics must compose with churn on one
// event engine (a join/leave landing inside an active flash crowd).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core/churn.h"
#include "core/system.h"
#include "data/dynamics.h"
#include "data/dynamics_driver.h"
#include "data/planetlab_synth.h"
#include "test_util.h"
#include "tree/maintenance.h"

namespace bcc {
namespace {

SynthDataset small_dataset(std::uint64_t seed, std::size_t hosts = 30) {
  Rng rng(seed);
  SynthOptions options;
  options.hosts = hosts;
  return synthesize_planetlab(options, rng);
}

BandwidthClasses classes_for(const DistanceMatrix& predicted) {
  const double dmax = predicted.max_distance();
  const double c = kDefaultTransformC;
  return BandwidthClasses({c / dmax, c / (dmax * 0.5), c / (dmax * 0.2)}, c);
}

/// A world wired the way the soak harness wires it: maintainer over a real
/// matrix, all hosts joined, sync system over the maintainer's anchors.
struct RepairWorld {
  DistanceMatrix real;
  FrameworkMaintainer maintainer;
  DistanceMatrix predicted;
  BandwidthClasses classes;
  SystemOptions sys_opts;
  DecentralizedClusterSystem sys;

  explicit RepairWorld(const SynthDataset& data)
      : real(data.distances), maintainer(&real),
        predicted(data.distances.size()), classes({1.0}),
        sys([&] {
          for (NodeId h = 0; h < real.size(); ++h) maintainer.join(h);
          maintainer.write_predicted(&predicted);
          classes = classes_for(predicted);
          sys_opts.n_cut = 5;
          return DecentralizedClusterSystem(maintainer.anchors(), predicted,
                                            classes, sys_opts);
        }()) {
    sys.run_to_convergence();
  }
};

/// Scales every link of `hosts` in `m` by `factor` (a correlated
/// distance-space disturbance confined to those hosts' links).
DistanceMatrix perturb_hosts(const DistanceMatrix& m,
                             const std::vector<NodeId>& hosts, double factor) {
  DistanceMatrix out = m;
  for (NodeId h : hosts) {
    for (NodeId v = 0; v < m.size(); ++v) {
      if (v == h) continue;
      out.set(h, v, out.at(h, v) * factor);
    }
  }
  return out;
}

TEST(StreamingRepair, IncrementalRepairMatchesFromScratchFixpoint) {
  const SynthDataset data = small_dataset(11);
  RepairWorld w(data);
  ASSERT_TRUE(w.sys.converged());

  // Disturb <= 10% of hosts (3 of 30) and repair incrementally.
  const std::vector<NodeId> dirty = {7, 19, 28};
  DistanceMatrix real2 = perturb_hosts(w.real, dirty, 1.4);
  const DistanceMatrix predicted_before = w.predicted;
  const auto report = w.maintainer.refresh_dirty(&real2, dirty);
  ASSERT_FALSE(report.full_rebuild);
  EXPECT_LE(report.repaired.size(), w.real.size() / 4);
  for (NodeId h : dirty) {
    EXPECT_TRUE(std::binary_search(report.repaired.begin(),
                                   report.repaired.end(), h));
  }
  w.maintainer.write_predicted_delta(&w.predicted, report.repaired);

  // Locality: pairs with neither end repaired keep their exact prediction.
  for (NodeId u = 0; u < w.predicted.size(); ++u) {
    for (NodeId v = u + 1; v < w.predicted.size(); ++v) {
      if (std::binary_search(report.repaired.begin(), report.repaired.end(),
                             u) ||
          std::binary_search(report.repaired.begin(), report.repaired.end(),
                             v)) {
        continue;
      }
      ASSERT_EQ(w.predicted.at(u, v), predicted_before.at(u, v))
          << "untouched pair (" << u << "," << v << ") moved";
    }
  }

  const std::size_t reused_before = w.sys.messages_reused();
  w.sys.refresh_delta(w.predicted, report.repaired, &w.maintainer.anchors());
  ASSERT_TRUE(w.sys.converged());
  // The delta path provably reused work outside the repaired subtree.
  EXPECT_GT(w.sys.messages_reused(), reused_before);

  // Exactness: string-equal canonical state vs a from-scratch system over
  // the same (tree, predicted, classes). This also proves the overlay
  // resync pruned every stale direction — a leftover ex-neighbor entry
  // would show up in the dump.
  DecentralizedClusterSystem fresh(w.maintainer.anchors(), w.predicted,
                                   w.classes, w.sys_opts);
  fresh.run_to_convergence();
  ASSERT_TRUE(fresh.converged());
  EXPECT_EQ(w.sys.canonical_dump(), fresh.canonical_dump());
}

TEST(StreamingRepair, RepeatedSmallRepairsStayExact) {
  const SynthDataset data = small_dataset(13);
  RepairWorld w(data);
  DistanceMatrix real_now = w.real;
  for (int round = 0; round < 5; ++round) {
    const NodeId h = static_cast<NodeId>((round * 7 + 3) % w.real.size());
    real_now = perturb_hosts(real_now, {h}, round % 2 == 0 ? 1.3 : 0.8);
    const auto report = w.maintainer.refresh_dirty(&real_now, {{h}});
    if (report.full_rebuild) {
      w.maintainer.write_predicted(&w.predicted);
    } else {
      w.maintainer.write_predicted_delta(&w.predicted, report.repaired);
    }
    w.sys.refresh_delta(w.predicted, report.repaired,
                        &w.maintainer.anchors());
    ASSERT_TRUE(w.sys.converged()) << "round " << round;
  }
  DecentralizedClusterSystem fresh(w.maintainer.anchors(), w.predicted,
                                   w.classes, w.sys_opts);
  fresh.run_to_convergence();
  EXPECT_EQ(w.sys.canonical_dump(), fresh.canonical_dump());
}

TEST(StreamingRepair, LargeDisturbanceFallsBackToFullRefresh) {
  const SynthDataset data = small_dataset(17);
  RepairWorld w(data);
  // 40% of hosts dirty: past both the maintainer's and the system's
  // full-refresh thresholds.
  std::vector<NodeId> dirty;
  for (NodeId h = 0; h < w.real.size(); h += 2) {
    dirty.push_back(h);
    if (dirty.size() >= w.real.size() * 2 / 5) break;
  }
  DistanceMatrix real2 = perturb_hosts(w.real, dirty, 1.5);
  const auto report = w.maintainer.refresh_dirty(&real2, dirty);
  EXPECT_TRUE(report.full_rebuild);
  EXPECT_EQ(report.repaired.size(), w.real.size());
  w.maintainer.write_predicted(&w.predicted);
  EXPECT_FALSE(w.sys.apply_delta(w.predicted, report.repaired,
                                 &w.maintainer.anchors()));
  w.sys.run_to_convergence();
  ASSERT_TRUE(w.sys.converged());
  DecentralizedClusterSystem fresh(w.maintainer.anchors(), w.predicted,
                                   w.classes, w.sys_opts);
  fresh.run_to_convergence();
  EXPECT_EQ(w.sys.canonical_dump(), fresh.canonical_dump());
}

TEST(StreamingRepair, RootDirtyForcesFullRebuild) {
  const SynthDataset data = small_dataset(19);
  RepairWorld w(data);
  const NodeId root = w.maintainer.anchors().bfs_order().front();
  DistanceMatrix real2 = perturb_hosts(w.real, {root}, 1.5);
  const auto report = w.maintainer.refresh_dirty(&real2, {{root}});
  EXPECT_TRUE(report.full_rebuild);
}

// ---------------------------------------------------------------- dynamics

DynamicsOptions quiet_options() {
  DynamicsOptions o;
  o.sigma = 0.0;
  o.congestion_rate = 0.0;
  return o;
}

TEST(Disturbances, FlashCrowdIsDeterministicAndCoversExactlyTheCrowd) {
  const SynthDataset data = small_dataset(23);
  DynamicsOptions o = quiet_options();
  o.flash_crowd_rate = 1.0;
  o.flash_crowd_fraction = 0.15;
  BandwidthDynamics a(data, o, 31);
  BandwidthDynamics b(data, o, 31);
  a.step();
  b.step();
  ASSERT_EQ(a.events().size(), 1u);
  const DisturbanceEvent& ev = a.events()[0];
  EXPECT_EQ(ev.kind, DisturbanceClass::kFlashCrowd);
  EXPECT_GE(ev.hosts.size(), 2u);
  EXPECT_EQ(ev.hosts, a.flash_hosts());
  // Same seed, same trajectory.
  ASSERT_EQ(b.events().size(), 1u);
  EXPECT_EQ(b.events()[0].hosts, ev.hosts);
  for (NodeId u = 0; u < data.bandwidth.size(); ++u) {
    for (NodeId v = u + 1; v < data.bandwidth.size(); ++v) {
      ASSERT_DOUBLE_EQ(a.current().at(u, v), b.current().at(u, v));
    }
  }
  // The greedy cover charges the disturbance to the crowd members alone —
  // NOT to every host that merely has a link into the crowd.
  EXPECT_EQ(a.dirty_hosts(0.5), ev.hosts);
}

TEST(Disturbances, CongestionChargesOnlyTheCongestedHost) {
  const SynthDataset data = small_dataset(29);
  DynamicsOptions o = quiet_options();
  o.congestion_rate = 1.0;
  BandwidthDynamics dyn(data, o, 37);
  dyn.step();
  ASSERT_EQ(dyn.events().size(), 1u);
  const DisturbanceEvent& ev = dyn.events()[0];
  EXPECT_EQ(ev.kind, DisturbanceClass::kCongestion);
  ASSERT_EQ(ev.hosts.size(), 1u);
  EXPECT_EQ(dyn.dirty_hosts(0.5), ev.hosts);
}

TEST(Disturbances, RegionDegradeHitsOnlyInternalLinks) {
  const SynthDataset data = small_dataset(31);
  DynamicsOptions degraded = quiet_options();
  degraded.region_degrade_rate = 1.0;
  degraded.regions = 4;
  DynamicsOptions calm = quiet_options();
  calm.regions = 4;
  // Same seed: the pair stream is identical, so any bandwidth difference is
  // the region overlay.
  BandwidthDynamics with(data, degraded, 41);
  BandwidthDynamics without(data, calm, 41);
  with.step();
  without.step();
  ASSERT_EQ(with.events().size(), 1u);
  const DisturbanceEvent& ev = with.events()[0];
  EXPECT_EQ(ev.kind, DisturbanceClass::kRegionDegrade);
  EXPECT_EQ(ev.hosts, with.degraded_region_hosts());
  const std::size_t region = with.region_of(ev.hosts[0]);
  for (NodeId h : ev.hosts) EXPECT_EQ(with.region_of(h), region);
  const double hit = std::log(degraded.region_degrade_factor);
  for (NodeId u = 0; u < data.bandwidth.size(); ++u) {
    for (NodeId v = u + 1; v < data.bandwidth.size(); ++v) {
      const double diff = std::log(with.current().at(u, v)) -
                          std::log(without.current().at(u, v));
      const bool internal =
          with.region_of(u) == region && with.region_of(v) == region;
      ASSERT_NEAR(diff, internal ? hit : 0.0, 1e-9)
          << "pair (" << u << "," << v << ")";
    }
  }
  // The dirty cover stays inside the degraded region.
  for (NodeId h : with.dirty_hosts(0.5)) {
    EXPECT_EQ(with.region_of(h), region);
  }
}

TEST(Disturbances, DiurnalCycleRepeatsWithThePeriod) {
  const SynthDataset data = small_dataset(37);
  DynamicsOptions o = quiet_options();
  o.rho = 0.0;  // no AR memory: bandwidth is a pure function of the phase
  o.diurnal_amplitude = 0.5;
  o.diurnal_period = 8;
  BandwidthDynamics dyn(data, o, 43);
  dyn.step();
  const BandwidthMatrix at_one = dyn.current();
  for (std::size_t i = 0; i < o.diurnal_period / 2; ++i) dyn.step();
  bool moved = false;
  for (NodeId v = 1; v < data.bandwidth.size() && !moved; ++v) {
    moved = std::abs(std::log(dyn.current().at(0, v) / at_one.at(0, v))) >
            0.05;
  }
  EXPECT_TRUE(moved) << "half a period should swing the bandwidth";
  for (std::size_t i = 0; i < o.diurnal_period / 2; ++i) dyn.step();
  for (NodeId u = 0; u < data.bandwidth.size(); ++u) {
    for (NodeId v = u + 1; v < data.bandwidth.size(); ++v) {
      ASSERT_NEAR(std::log(dyn.current().at(u, v)),
                  std::log(at_one.at(u, v)), 1e-9);
    }
  }
}

TEST(Disturbances, DisabledGeneratorsDrawNothingNew) {
  // A seed recorded before the new generators existed must replay the same
  // trajectory when they stay disabled: the layout/event/pair streams are
  // separate, and disabled generators never touch the event stream.
  const SynthDataset data = small_dataset(41);
  DynamicsOptions legacy;  // defaults: all new generators off
  DynamicsOptions tuned = legacy;
  tuned.diurnal_period = 48;       // layout-only knobs may differ...
  tuned.regions = 7;               // ...without perturbing the draws
  BandwidthDynamics a(data, legacy, 47);
  BandwidthDynamics b(data, tuned, 47);
  for (int i = 0; i < 10; ++i) {
    a.step();
    b.step();
  }
  for (NodeId u = 0; u < data.bandwidth.size(); ++u) {
    for (NodeId v = u + 1; v < data.bandwidth.size(); ++v) {
      ASSERT_DOUBLE_EQ(a.current().at(u, v), b.current().at(u, v));
    }
  }
}

// ---------------------------------------------------------------- driver

TEST(DynamicsDriverTest, TicksRewritePredictedAndReportDirty) {
  const SynthDataset data = small_dataset(43, 16);
  DynamicsOptions o = quiet_options();
  o.congestion_rate = 1.0;
  BandwidthDynamics dyn(data, o, 53);
  DistanceMatrix predicted = data.distances;
  DynamicsDriverOptions dopts;
  dopts.epochs = 3;
  dopts.epoch_period = 1.0;
  dopts.dirty_log_threshold = 0.5;
  DynamicsDriver driver(&dyn, &predicted, dopts);
  EventEngine engine;
  std::vector<std::pair<std::size_t, std::size_t>> seen;  // epoch, dirty size
  driver.schedule(engine, [&](std::size_t epoch,
                              const std::vector<NodeId>& dirty) {
    seen.emplace_back(epoch, dirty.size());
  });
  engine.run_until(10.0);
  EXPECT_EQ(driver.epochs_applied(), 3u);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0].first, 1u);
  EXPECT_GE(seen[0].second, 1u);  // congestion every epoch -> dirty host
  for (NodeId u = 0; u < predicted.size(); ++u) {
    for (NodeId v = u + 1; v < predicted.size(); ++v) {
      ASSERT_DOUBLE_EQ(predicted.at(u, v),
                       bandwidth_to_distance(dyn.current().at(u, v), dopts.c));
    }
  }
}

// ---------------------------------------------------- churn x dynamics

/// Canonical fingerprint of an async overlay's tables.
std::string overlay_fingerprint(const AsyncOverlay& async,
                                const AnchorTree& tree) {
  std::ostringstream out;
  for (NodeId x : tree.bfs_order()) {
    out << canonical_node_state(x, async.nodes().at(x));
  }
  return out.str();
}

/// One full churn-during-flash-crowd run; returns the final fingerprint
/// after asserting the exact post-run fixpoint.
std::string run_churn_during_flash(std::uint64_t seed) {
  const std::size_t universe = 18;
  Rng rng(seed + 300);
  const DistanceMatrix tree_metric = testutil::random_tree_metric(universe, rng);
  const BandwidthClasses classes = classes_for(tree_metric);

  // The dynamics evolve the shared metric; flash crowds fire every epoch, so
  // the churn below lands inside an active crowd.
  SynthDataset data;
  data.name = "streaming";
  data.bandwidth = inverse_rational_transform(tree_metric, kDefaultTransformC);
  data.tree_distances = tree_metric;
  data.c = kDefaultTransformC;
  DynamicsOptions dyn_opts;
  dyn_opts.sigma = 0.0;
  dyn_opts.congestion_rate = 0.0;
  dyn_opts.flash_crowd_rate = 1.0;
  dyn_opts.flash_crowd_fraction = 0.2;
  dyn_opts.flash_crowd_epochs = 4;
  BandwidthDynamics dyn(data, dyn_opts, seed);

  DistanceMatrix metric = tree_metric;
  FrameworkMaintainer maintainer(&metric);
  for (NodeId h = 0; h < universe - 2; ++h) maintainer.join(h);

  AsyncOverlayOptions options;
  options.n_cut = 5;
  options.gossip_period = 1.0;
  AsyncOverlay async(&maintainer.anchors(), &metric, &classes, options,
                     seed + 60);
  EventEngine engine;
  async.start(engine);

  ChurnDriver churn(&maintainer, &async);
  churn.schedule(engine, {ChurnEvent::leave(3.0, 4),
                          ChurnEvent::join(5.0, universe - 2)});

  DynamicsDriverOptions drv_opts;
  drv_opts.epoch_period = 2.0;
  drv_opts.start_at = 2.0;
  drv_opts.epochs = 4;
  drv_opts.dirty_log_threshold = 0.5;
  DynamicsDriver driver(&dyn, &metric, drv_opts);
  driver.schedule(engine, [&](std::size_t, const std::vector<NodeId>& dirty) {
    // Kick the dirty hosts' gossip immediately instead of waiting out their
    // periodic timers (the repair-latency path the soak harness measures).
    std::vector<NodeId> alive_dirty;
    for (NodeId h : dirty) {
      if (maintainer.contains(h)) alive_dirty.push_back(h);
    }
    async.trigger_gossip(alive_dirty);
  });
  engine.run_until(10.0);
  EXPECT_EQ(churn.applied(), 2u);
  EXPECT_EQ(driver.epochs_applied(), 4u);
  EXPECT_FALSE(dyn.flash_hosts().empty());  // crowd active through the churn

  // Quiet period: gossip re-converges on the final (membership, metric).
  async.run_for(engine, 8.0 * (maintainer.anchors().diameter() + 2));

  // Exact fixpoint on the final state: sync ground truth over the repaired
  // tree and the dynamics-evolved metric.
  SystemOptions sync_options;
  sync_options.n_cut = options.n_cut;
  DecentralizedClusterSystem sync(maintainer.anchors(), metric, classes,
                                  sync_options);
  sync.run_to_convergence();
  EXPECT_TRUE(sync.converged());
  auto sorted = [](std::vector<NodeId> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  for (NodeId x : maintainer.anchors().bfs_order()) {
    const OverlayNode& sync_node = sync.node(x);
    const OverlayNode& async_node = async.nodes().at(x);
    for (NodeId m : sync_node.neighbors) {
      EXPECT_EQ(sorted(async_node.aggr_node.at(m)),
                sorted(sync_node.aggr_node.at(m)))
          << "seed=" << seed << " x=" << x << " m=" << m;
      EXPECT_EQ(async_node.aggr_crt.at(m), sync_node.aggr_crt.at(m))
          << "seed=" << seed << " x=" << x << " m=" << m;
    }
  }
  return overlay_fingerprint(async, maintainer.anchors());
}

TEST(StreamingChurn, JoinLeaveDuringActiveFlashCrowdReconverges) {
  // Deterministic per seed, and different seeds give different worlds.
  const std::string a = run_churn_during_flash(5);
  const std::string b = run_churn_during_flash(5);
  const std::string c = run_churn_during_flash(6);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace bcc
