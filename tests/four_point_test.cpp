#include "metric/four_point.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.h"

namespace bcc {
namespace {

TEST(FourPoint, PerfectTreeQuartetsHaveZeroEpsilon) {
  Rng rng(1);
  const DistanceMatrix d = testutil::random_tree_metric(10, rng);
  for (NodeId w = 0; w < 4; ++w) {
    for (NodeId x = w + 1; x < 6; ++x) {
      EXPECT_NEAR(quartet_epsilon(d, w, x, 7, 9), 0.0, 1e-9);
    }
  }
}

TEST(FourPoint, ViolatingQuartetDetected) {
  // A "square" metric: 4 points with unit sides and equal diagonals violates
  // 4PC (all three pair-sums distinct or two smaller equal).
  DistanceMatrix d(4);
  d.set(0, 1, 1.0);
  d.set(1, 2, 1.0);
  d.set(2, 3, 1.0);
  d.set(0, 3, 1.0);
  d.set(0, 2, 1.4142135623730951);
  d.set(1, 3, 1.4142135623730951);
  EXPECT_FALSE(quartet_satisfies_4pc(d, 0, 1, 2, 3));
  EXPECT_GT(quartet_epsilon(d, 0, 1, 2, 3), 0.0);
}

TEST(FourPoint, EpsilonIsScaleFree) {
  Rng rng(2);
  DistanceMatrix d = testutil::noisy_tree_metric(6, rng, 0.5);
  const double eps = quartet_epsilon(d, 0, 1, 2, 3);
  DistanceMatrix scaled(6);
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = u + 1; v < 6; ++v) scaled.set(u, v, 7.5 * d.at(u, v));
  }
  EXPECT_NEAR(quartet_epsilon(scaled, 0, 1, 2, 3), eps, 1e-9);
}

TEST(FourPoint, EpsilonInvariantToArgumentOrder) {
  Rng rng(3);
  const DistanceMatrix d = testutil::noisy_tree_metric(6, rng, 0.4);
  const double ref = quartet_epsilon(d, 0, 1, 2, 3);
  EXPECT_DOUBLE_EQ(quartet_epsilon(d, 3, 2, 1, 0), ref);
  EXPECT_DOUBLE_EQ(quartet_epsilon(d, 1, 3, 0, 2), ref);
  EXPECT_DOUBLE_EQ(quartet_epsilon(d, 2, 0, 3, 1), ref);
}

TEST(FourPoint, DegenerateQuartetWithCoincidentPointsIsFinite) {
  DistanceMatrix d(4);  // all zeros: four coincident points
  EXPECT_DOUBLE_EQ(quartet_epsilon(d, 0, 1, 2, 3), 0.0);
  EXPECT_TRUE(quartet_satisfies_4pc(d, 0, 1, 2, 3));
}

TEST(IsTreeMetric, AcceptsGeneratedTrees) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed);
    EXPECT_TRUE(is_tree_metric(testutil::random_tree_metric(9, rng), 1e-6))
        << "seed " << seed;
  }
}

TEST(IsTreeMetric, RejectsSquareMetric) {
  DistanceMatrix d(4);
  d.set(0, 1, 1.0);
  d.set(1, 2, 1.0);
  d.set(2, 3, 1.0);
  d.set(0, 3, 1.0);
  d.set(0, 2, 1.4142135623730951);
  d.set(1, 3, 1.4142135623730951);
  EXPECT_FALSE(is_tree_metric(d));
}

TEST(IsTreeMetric, TrivialSizesAreTreeMetrics) {
  // Fewer than 4 points: 4PC is vacuous.
  EXPECT_TRUE(is_tree_metric(DistanceMatrix(0)));
  EXPECT_TRUE(is_tree_metric(DistanceMatrix(3, 5.0)));
}

TEST(EstimateTreeness, ZeroForPerfectTree) {
  Rng rng(4);
  const DistanceMatrix d = testutil::random_tree_metric(15, rng);
  Rng est(5);
  const TreenessStats stats = estimate_treeness(d, est, 5000);
  EXPECT_NEAR(stats.epsilon_avg, 0.0, 1e-9);
  EXPECT_NEAR(stats.epsilon_max, 0.0, 1e-9);
  EXPECT_GT(stats.quartets, 0u);
}

TEST(EstimateTreeness, GrowsWithNoise) {
  Rng rng(6);
  const DistanceMatrix base = testutil::random_tree_metric(20, rng);
  auto eps_at = [&](double sigma) {
    Rng noise(7);
    DistanceMatrix d = base;
    for (NodeId u = 0; u < d.size(); ++u) {
      for (NodeId v = u + 1; v < d.size(); ++v) {
        d.set(u, v, d.at(u, v) * noise.lognormal(0.0, sigma));
      }
    }
    Rng est(8);
    return estimate_treeness(d, est, 20000).epsilon_avg;
  };
  const double none = eps_at(0.0);
  const double small = eps_at(0.1);
  const double large = eps_at(0.6);
  EXPECT_LT(none, small);
  EXPECT_LT(small, large);
}

TEST(EstimateTreeness, ExactEnumerationForSmallInputs) {
  Rng rng(9);
  const DistanceMatrix d = testutil::noisy_tree_metric(8, rng, 0.3);
  Rng est(10);
  const TreenessStats stats = estimate_treeness(d, est, 100000);
  EXPECT_EQ(stats.quartets, 70u);  // C(8,4)
}

TEST(EstimateTreeness, SamplingCapRespected) {
  Rng rng(11);
  const DistanceMatrix d = testutil::noisy_tree_metric(40, rng, 0.3);
  Rng est(12);
  const TreenessStats stats = estimate_treeness(d, est, 500);
  EXPECT_EQ(stats.quartets, 500u);
}

TEST(EstimateTreeness, TooFewPointsIsZero) {
  const DistanceMatrix d(3, 1.0);
  Rng est(13);
  const TreenessStats stats = estimate_treeness(d, est);
  EXPECT_EQ(stats.quartets, 0u);
  EXPECT_DOUBLE_EQ(stats.epsilon_avg, 0.0);
}

TEST(FourPoint, AccessLinkBottleneckModelIsTreeMetric) {
  // The theoretical result the paper cites ([20], §II.C): if bandwidth is
  // bottlenecked at the access link of either end — BW(u,v) = min(a_u, a_v)
  // — then d(u,v) = C / BW(u,v) = max(C/a_u, C/a_v) satisfies 4PC exactly.
  Rng rng(50);
  const std::size_t n = 12;
  std::vector<double> access(n);
  for (auto& a : access) a = rng.uniform(5.0, 200.0);
  DistanceMatrix d(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double bw = std::min(access[u], access[v]);
      d.set(u, v, 1000.0 / bw);
    }
  }
  EXPECT_TRUE(is_tree_metric(d, 1e-9));
}

TEST(FourPoint, UltrametricsAreTreeMetrics) {
  // Any ultrametric (d(u,w) <= max(d(u,v), d(v,w))) satisfies 4PC; build one
  // from a random hierarchy of merge heights.
  Rng rng(51);
  const std::size_t n = 10;
  // Single-linkage style: nodes on a line, distance = max height between.
  std::vector<double> heights(n - 1);
  for (auto& h : heights) h = rng.uniform(1.0, 50.0);
  DistanceMatrix d(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      double h = 0.0;
      for (NodeId i = u; i < v; ++i) h = std::max(h, heights[i]);
      d.set(u, v, h);
    }
  }
  EXPECT_TRUE(is_tree_metric(d, 1e-9));
}

TEST(EpsilonStar, BoundsAndMonotonicity) {
  EXPECT_DOUBLE_EQ(epsilon_star(0.0), 0.0);
  EXPECT_NEAR(epsilon_star(1.0), 0.5, 1e-12);
  EXPECT_LT(epsilon_star(0.2), epsilon_star(0.8));
  EXPECT_LT(epsilon_star(1e9), 1.0);
  EXPECT_THROW(epsilon_star(-0.1), ContractViolation);
}

}  // namespace
}  // namespace bcc
