#include "data/subsets.h"

#include <gtest/gtest.h>

#include "data/planetlab_synth.h"
#include "test_util.h"

namespace bcc {
namespace {

TEST(Subsets, RandomSubsetSortedDistinctInRange) {
  Rng rng(1);
  const auto idx = random_subset(50, 20, rng);
  ASSERT_EQ(idx.size(), 20u);
  for (std::size_t i = 0; i + 1 < idx.size(); ++i) {
    EXPECT_LT(idx[i], idx[i + 1]);  // sorted + distinct
  }
  EXPECT_LT(idx.back(), 50u);
}

TEST(Subsets, RandomSubsetFullAndEmpty) {
  Rng rng(2);
  EXPECT_EQ(random_subset(5, 5, rng).size(), 5u);
  EXPECT_TRUE(random_subset(5, 0, rng).empty());
  EXPECT_THROW(random_subset(5, 6, rng), ContractViolation);
}

TEST(Subsets, ExtractBandwidthPreservesValues) {
  BandwidthMatrix bw(4, 1.0);
  bw.set(1, 3, 42.0);
  bw.set(1, 2, 7.0);
  const std::vector<NodeId> idx = {1, 3};
  const BandwidthMatrix sub = extract_bandwidth(bw, idx);
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_DOUBLE_EQ(sub.at(0, 1), 42.0);
}

TEST(Subsets, ExtractBandwidthValidatesIndices) {
  BandwidthMatrix bw(3, 1.0);
  const std::vector<NodeId> idx = {0, 7};
  EXPECT_THROW(extract_bandwidth(bw, idx), ContractViolation);
}

TEST(Subsets, TreenessSpreadIsOrderedAndSpreads) {
  // The Fig. 5 recipe: subsets of one dataset ordered by ε_avg.
  Rng data_rng(3);
  SynthOptions options;
  options.hosts = 80;
  options.noise_sigma = 0.35;
  const SynthDataset data = synthesize_planetlab(options, data_rng);
  Rng rng(4);
  const auto subsets =
      treeness_spread_subsets(data.distances, 30, 4, 40, rng, 1500);
  ASSERT_EQ(subsets.size(), 4u);
  for (std::size_t i = 0; i + 1 < subsets.size(); ++i) {
    EXPECT_LE(subsets[i].epsilon_avg, subsets[i + 1].epsilon_avg);
  }
  // Extremes differ (the pool has genuine spread under noise).
  EXPECT_LT(subsets.front().epsilon_avg, subsets.back().epsilon_avg);
  for (const auto& s : subsets) {
    EXPECT_EQ(s.indices.size(), 30u);
    for (NodeId i : s.indices) EXPECT_LT(i, 80u);
  }
}

TEST(Subsets, TreenessSpreadSingleCount) {
  Rng rng(5);
  const DistanceMatrix d = testutil::noisy_tree_metric(20, rng, 0.3);
  Rng srng(6);
  const auto subsets = treeness_spread_subsets(d, 10, 1, 5, srng, 500);
  EXPECT_EQ(subsets.size(), 1u);
}

TEST(Subsets, TreenessSpreadValidation) {
  Rng rng(7);
  const DistanceMatrix d = testutil::random_tree_metric(10, rng);
  EXPECT_THROW(treeness_spread_subsets(d, 3, 2, 5, rng), ContractViolation);
  EXPECT_THROW(treeness_spread_subsets(d, 11, 2, 5, rng), ContractViolation);
  EXPECT_THROW(treeness_spread_subsets(d, 5, 3, 2, rng), ContractViolation);
}

TEST(Subsets, SubsetOfPerfectTreeStaysPerfect) {
  Rng rng(8);
  const DistanceMatrix d = testutil::random_tree_metric(30, rng);
  Rng srng(9);
  const auto subsets = treeness_spread_subsets(d, 12, 3, 10, srng, 2000);
  for (const auto& s : subsets) {
    EXPECT_NEAR(s.epsilon_avg, 0.0, 1e-9);
  }
}

}  // namespace
}  // namespace bcc
