#include "core/async_overlay.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/system.h"
#include "test_util.h"
#include "tree/embedder.h"

namespace bcc {
namespace {

struct AsyncSetup {
  Framework fw;
  DistanceMatrix predicted;
  BandwidthClasses classes = BandwidthClasses({1.0});
};

AsyncSetup make_setup(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  const DistanceMatrix real = testutil::random_tree_metric(n, rng);
  Rng order(seed + 5);
  AsyncSetup s{build_framework(real, order), {}, BandwidthClasses({1.0})};
  s.predicted = s.fw.predicted_distances();
  const double dmax = s.predicted.max_distance();
  const double c = kDefaultTransformC;
  s.classes = BandwidthClasses(
      {c / dmax, c / (dmax * 0.5), c / (dmax * 0.2)}, c);
  return s;
}

TEST(AsyncOverlay, ReachesTheSynchronousFixpoint) {
  for (std::uint64_t seed : {1ull, 2ull}) {
    AsyncSetup s = make_setup(18, seed);
    const std::size_t n_cut = 5;

    // Synchronous reference.
    SystemOptions sync_options;
    sync_options.n_cut = n_cut;
    DecentralizedClusterSystem sync(s.fw.anchors, s.predicted, s.classes,
                                    sync_options);
    sync.run_to_convergence();
    ASSERT_TRUE(sync.converged());

    // Asynchronous run: enough simulated time for diameter-many periods.
    AsyncOverlayOptions async_options;
    async_options.n_cut = n_cut;
    async_options.gossip_period = 1.0;
    async_options.message_latency = 0.03;
    AsyncOverlay async(&s.fw.anchors, &s.predicted, &s.classes, async_options,
                       seed + 77);
    EventEngine engine;
    async.run_for(engine, 4.0 * (s.fw.anchors.diameter() + 2));

    for (const auto& [x, sync_node] : [&] {
           OverlayNodeMap copy;
           for (NodeId h : s.fw.anchors.bfs_order()) {
             copy.emplace(h, sync.node(h));
           }
           return copy;
         }()) {
      const OverlayNode& async_node = async.nodes().at(x);
      for (NodeId m : sync_node.neighbors) {
        auto sorted = [](std::vector<NodeId> v) {
          std::sort(v.begin(), v.end());
          return v;
        };
        EXPECT_EQ(sorted(async_node.aggr_node.at(m)),
                  sorted(sync_node.aggr_node.at(m)))
            << "x=" << x << " m=" << m << " seed=" << seed;
        EXPECT_EQ(async_node.aggr_crt.at(m), sync_node.aggr_crt.at(m))
            << "x=" << x << " m=" << m << " seed=" << seed;
      }
      EXPECT_EQ(async_node.aggr_crt.at(x), sync_node.aggr_crt.at(x));
    }
  }
}

TEST(AsyncOverlay, QuiescesAfterConvergence) {
  AsyncSetup s = make_setup(14, 3);
  AsyncOverlayOptions options;
  options.n_cut = 4;
  AsyncOverlay async(&s.fw.anchors, &s.predicted, &s.classes, options, 9);
  EventEngine engine;
  const double horizon = 4.0 * (s.fw.anchors.diameter() + 2);
  async.run_for(engine, horizon);
  const SimTime settled = async.last_change();
  EXPECT_LT(settled, horizon);  // converged well before the end
  // Further simulation changes nothing.
  async.run_for(engine, 10.0);
  EXPECT_DOUBLE_EQ(async.last_change(), settled);
}

TEST(AsyncOverlay, GossipKeepsFiringAndIsCounted) {
  AsyncSetup s = make_setup(10, 4);
  AsyncOverlayOptions options;
  options.gossip_period = 0.5;
  AsyncOverlay async(&s.fw.anchors, &s.predicted, &s.classes, options, 10);
  EventEngine engine;
  async.run_for(engine, 5.0);
  // ~10 nodes x 10 periods.
  EXPECT_GT(async.gossip_rounds(), 60u);
  EXPECT_GT(engine.metrics().messages("async_gossip"), 100u);
}

TEST(AsyncOverlay, PerPairRttLatencies) {
  AsyncSetup s = make_setup(12, 5);
  DistanceMatrix rtt(12, 0.0);
  for (NodeId u = 0; u < 12; ++u) {
    for (NodeId v = u + 1; v < 12; ++v) rtt.set(u, v, 20.0);  // 20 ms
  }
  AsyncOverlayOptions options;
  options.rtt_ms = &rtt;
  AsyncOverlay async(&s.fw.anchors, &s.predicted, &s.classes, options, 11);
  EventEngine engine;
  async.run_for(engine, 3.0 * (s.fw.anchors.diameter() + 2));
  // It still converges to a consistent state (self entries exist).
  for (const auto& [x, node] : async.nodes()) {
    EXPECT_TRUE(node.aggr_crt.count(x));
  }
}

TEST(AsyncOverlay, QueriesWorkOnAsyncState) {
  // Algorithm 4 runs on whatever tables aggregation produced — async state
  // serves queries just like sync state.
  AsyncSetup s = make_setup(16, 6);
  AsyncOverlayOptions options;
  options.n_cut = 100;
  AsyncOverlay async(&s.fw.anchors, &s.predicted, &s.classes, options, 12);
  EventEngine engine;
  async.run_for(engine, 4.0 * (s.fw.anchors.diameter() + 2));
  QueryProcessor processor(async.nodes(), s.predicted, s.classes);
  const auto r = processor.process(0, 4, 0);
  EXPECT_TRUE(r.found());
  EXPECT_TRUE(cluster_satisfies(s.predicted, r.cluster, 4,
                                s.classes.distance_at(0)));
}

TEST(AsyncOverlay, Validation) {
  AsyncSetup s = make_setup(8, 7);
  AsyncOverlayOptions bad;
  bad.gossip_period = 0.0;
  EXPECT_THROW(AsyncOverlay(&s.fw.anchors, &s.predicted, &s.classes, bad, 1),
               ContractViolation);
  bad = AsyncOverlayOptions{};
  bad.period_jitter = 1.0;
  EXPECT_THROW(AsyncOverlay(&s.fw.anchors, &s.predicted, &s.classes, bad, 1),
               ContractViolation);
  DistanceMatrix wrong(3);
  bad = AsyncOverlayOptions{};
  bad.rtt_ms = &wrong;
  EXPECT_THROW(AsyncOverlay(&s.fw.anchors, &s.predicted, &s.classes, bad, 1),
               ContractViolation);
  AsyncOverlay ok(&s.fw.anchors, &s.predicted, &s.classes, {}, 1);
  EventEngine engine;
  ok.start(engine);
  EXPECT_THROW(ok.start(engine), ContractViolation);  // double start
}

}  // namespace
}  // namespace bcc
