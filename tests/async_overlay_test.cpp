#include "core/async_overlay.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/system.h"
#include "test_util.h"
#include "tree/embedder.h"

namespace bcc {
namespace {

struct AsyncSetup {
  Framework fw;
  DistanceMatrix predicted;
  BandwidthClasses classes = BandwidthClasses({1.0});
};

AsyncSetup make_setup(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  const DistanceMatrix real = testutil::random_tree_metric(n, rng);
  Rng order(seed + 5);
  AsyncSetup s{build_framework(real, order), {}, BandwidthClasses({1.0})};
  s.predicted = s.fw.predicted_distances();
  const double dmax = s.predicted.max_distance();
  const double c = kDefaultTransformC;
  s.classes = BandwidthClasses(
      {c / dmax, c / (dmax * 0.5), c / (dmax * 0.2)}, c);
  return s;
}

TEST(AsyncOverlay, ReachesTheSynchronousFixpoint) {
  for (std::uint64_t seed : {1ull, 2ull}) {
    AsyncSetup s = make_setup(18, seed);
    const std::size_t n_cut = 5;

    // Synchronous reference.
    SystemOptions sync_options;
    sync_options.n_cut = n_cut;
    DecentralizedClusterSystem sync(s.fw.anchors, s.predicted, s.classes,
                                    sync_options);
    sync.run_to_convergence();
    ASSERT_TRUE(sync.converged());

    // Asynchronous run: enough simulated time for diameter-many periods.
    AsyncOverlayOptions async_options;
    async_options.n_cut = n_cut;
    async_options.gossip_period = 1.0;
    async_options.message_latency = 0.03;
    AsyncOverlay async(&s.fw.anchors, &s.predicted, &s.classes, async_options,
                       seed + 77);
    EventEngine engine;
    async.run_for(engine, 4.0 * (s.fw.anchors.diameter() + 2));

    for (const auto& [x, sync_node] : [&] {
           OverlayNodeMap copy;
           for (NodeId h : s.fw.anchors.bfs_order()) {
             copy.emplace(h, sync.node(h));
           }
           return copy;
         }()) {
      const OverlayNode& async_node = async.nodes().at(x);
      for (NodeId m : sync_node.neighbors) {
        auto sorted = [](std::vector<NodeId> v) {
          std::sort(v.begin(), v.end());
          return v;
        };
        EXPECT_EQ(sorted(async_node.aggr_node.at(m)),
                  sorted(sync_node.aggr_node.at(m)))
            << "x=" << x << " m=" << m << " seed=" << seed;
        EXPECT_EQ(async_node.aggr_crt.at(m), sync_node.aggr_crt.at(m))
            << "x=" << x << " m=" << m << " seed=" << seed;
      }
      EXPECT_EQ(async_node.aggr_crt.at(x), sync_node.aggr_crt.at(x));
    }
  }
}

TEST(AsyncOverlay, QuiescesAfterConvergence) {
  AsyncSetup s = make_setup(14, 3);
  AsyncOverlayOptions options;
  options.n_cut = 4;
  AsyncOverlay async(&s.fw.anchors, &s.predicted, &s.classes, options, 9);
  EventEngine engine;
  const double horizon = 4.0 * (s.fw.anchors.diameter() + 2);
  async.run_for(engine, horizon);
  const SimTime settled = async.last_change();
  EXPECT_LT(settled, horizon);  // converged well before the end
  // Further simulation changes nothing.
  async.run_for(engine, 10.0);
  EXPECT_DOUBLE_EQ(async.last_change(), settled);
}

TEST(AsyncOverlay, GossipKeepsFiringAndIsCounted) {
  AsyncSetup s = make_setup(10, 4);
  AsyncOverlayOptions options;
  options.gossip_period = 0.5;
  AsyncOverlay async(&s.fw.anchors, &s.predicted, &s.classes, options, 10);
  EventEngine engine;
  async.run_for(engine, 5.0);
  // ~10 nodes x 10 periods.
  EXPECT_GT(async.gossip_rounds(), 60u);
  EXPECT_GT(engine.metrics().messages("async_gossip"), 100u);
}

TEST(AsyncOverlay, PerPairRttLatencies) {
  AsyncSetup s = make_setup(12, 5);
  DistanceMatrix rtt(12, 0.0);
  for (NodeId u = 0; u < 12; ++u) {
    for (NodeId v = u + 1; v < 12; ++v) rtt.set(u, v, 20.0);  // 20 ms
  }
  AsyncOverlayOptions options;
  options.rtt_ms = &rtt;
  AsyncOverlay async(&s.fw.anchors, &s.predicted, &s.classes, options, 11);
  EventEngine engine;
  async.run_for(engine, 3.0 * (s.fw.anchors.diameter() + 2));
  // It still converges to a consistent state (self entries exist).
  for (const auto& [x, node] : async.nodes()) {
    EXPECT_TRUE(node.aggr_crt.count(x));
  }
}

TEST(AsyncOverlay, QueriesWorkOnAsyncState) {
  // Algorithm 4 runs on whatever tables aggregation produced — async state
  // serves queries just like sync state.
  AsyncSetup s = make_setup(16, 6);
  AsyncOverlayOptions options;
  options.n_cut = 100;
  AsyncOverlay async(&s.fw.anchors, &s.predicted, &s.classes, options, 12);
  EventEngine engine;
  async.run_for(engine, 4.0 * (s.fw.anchors.diameter() + 2));
  QueryProcessor processor(async.nodes(), s.predicted, s.classes);
  const auto r = processor.run(QueryRequest::at_class(0, 4, 0));
  EXPECT_TRUE(r.found());
  EXPECT_TRUE(cluster_satisfies(s.predicted, r.cluster, 4,
                                s.classes.distance_at(0)));
}

// Direct table comparison against the synchronous fixpoint (both runs call
// the shared compute_prop_* kernels, so equality is exact).
void expect_sync_fixpoint(const AsyncOverlay& async, const AsyncSetup& s,
                          std::size_t n_cut, const char* context) {
  SystemOptions sync_options;
  sync_options.n_cut = n_cut;
  DecentralizedClusterSystem sync(s.fw.anchors, s.predicted, s.classes,
                                  sync_options);
  sync.run_to_convergence();
  ASSERT_TRUE(sync.converged());
  auto sorted = [](std::vector<NodeId> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  for (NodeId x : s.fw.anchors.bfs_order()) {
    const OverlayNode& sync_node = sync.node(x);
    const OverlayNode& async_node = async.nodes().at(x);
    for (NodeId m : sync_node.neighbors) {
      EXPECT_EQ(sorted(async_node.aggr_node.at(m)),
                sorted(sync_node.aggr_node.at(m)))
          << context << " x=" << x << " m=" << m;
      EXPECT_EQ(async_node.aggr_crt.at(m), sync_node.aggr_crt.at(m))
          << context << " x=" << x << " m=" << m;
    }
    EXPECT_EQ(async_node.aggr_crt.at(x), sync_node.aggr_crt.at(x)) << context;
  }
}

TEST(AsyncOverlay, ConvergesUnderTenPercentLoss) {
  AsyncSetup s = make_setup(16, 21);
  FaultPlan plan(99);
  plan.set_default_faults({.drop_prob = 0.1, .jitter_max = 0.02});
  AsyncOverlayOptions options;
  options.n_cut = 5;
  options.faults = &plan;
  AsyncOverlay async(&s.fw.anchors, &s.predicted, &s.classes, options, 22);
  EventEngine engine;
  async.run_for(engine, 8.0 * (s.fw.anchors.diameter() + 2));
  expect_sync_fixpoint(async, s, 5, "10% loss");
  EXPECT_GT(engine.metrics().dropped(), 0u);
}

TEST(AsyncOverlay, TotalLinkLossTriggersRetriesThenSuspicionThenHeals) {
  AsyncSetup s = make_setup(12, 23);
  // Sever one tree edge completely for a while.
  const NodeId parent = s.fw.anchors.bfs_order()[0];
  const NodeId child = s.fw.anchors.neighbors_of(parent)[0];
  FaultPlan plan(5);
  plan.add_partition({parent}, {child}, /*from=*/0.0, /*until=*/30.0);
  AsyncOverlayOptions options;
  options.faults = &plan;
  options.gossip_period = 1.0;
  options.ack_timeout = 0.3;
  options.max_retries = 1;
  options.suspect_after = 2;
  AsyncOverlay async(&s.fw.anchors, &s.predicted, &s.classes, options, 24);
  EventEngine engine;
  async.run_for(engine, 30.0);
  // Every exchange across the cut timed out: retries happened, and after
  // enough consecutive failures both endpoints suspect each other.
  EXPECT_GT(engine.metrics().retried(), 0u);
  EXPECT_GE(engine.metrics().suspected(), 2u);
  EXPECT_TRUE(async.suspects(parent, child));
  EXPECT_TRUE(async.suspects(child, parent));
  EXPECT_FALSE(async.healthy());
  // The partition lifts; the first acked exchange redeems the link.
  async.run_for(engine, 20.0);
  EXPECT_FALSE(async.suspects(parent, child));
  EXPECT_FALSE(async.suspects(child, parent));
  EXPECT_TRUE(async.healthy());
  expect_sync_fixpoint(async, s, options.n_cut, "healed partition");
}

TEST(AsyncOverlay, CrashWipesStateAndRecoveryRefillsIt) {
  AsyncSetup s = make_setup(14, 25);
  AsyncOverlayOptions options;
  options.n_cut = 4;
  AsyncOverlay async(&s.fw.anchors, &s.predicted, &s.classes, options, 26);
  EventEngine engine;
  const double horizon = 4.0 * (s.fw.anchors.diameter() + 2);
  async.run_for(engine, horizon);
  const NodeId victim = s.fw.anchors.bfs_order()[1];
  async.crash(victim);
  EXPECT_TRUE(async.is_down(victim));
  EXPECT_EQ(async.down_count(), 1u);
  EXPECT_FALSE(async.healthy());
  EXPECT_TRUE(async.nodes().at(victim).aggr_crt.empty());  // cold crash
  // While down, the overlay keeps running but the victim stays silent.
  async.run_for(engine, 5.0);
  EXPECT_TRUE(async.nodes().at(victim).aggr_crt.empty());
  async.recover(victim);
  EXPECT_FALSE(async.is_down(victim));
  async.run_for(engine, horizon);
  EXPECT_TRUE(async.healthy());
  expect_sync_fixpoint(async, s, 4, "after crash/recover");
}

TEST(AsyncOverlay, FaultPlanCrashScheduleStopsTimers) {
  AsyncSetup s = make_setup(10, 27);
  const NodeId victim = s.fw.anchors.bfs_order()[2];
  FaultPlan plan(5);
  plan.add_crash(victim, /*down_at=*/2.0, /*up_at=*/10.0);
  AsyncOverlayOptions options;
  options.faults = &plan;
  options.gossip_period = 1.0;
  AsyncOverlay async(&s.fw.anchors, &s.predicted, &s.classes, options, 28);
  EventEngine engine;
  async.start(engine);
  engine.run_until(5.0);
  EXPECT_TRUE(async.is_down(victim));
  const std::size_t rounds_while_down = async.gossip_rounds();
  engine.run_until(9.0);
  // Other nodes gossip on, but timer cancellation keeps the victim quiet —
  // rounds grew only by the survivors' firings (victim contributes none:
  // its table stays empty the whole window).
  EXPECT_GT(async.gossip_rounds(), rounds_while_down);
  EXPECT_TRUE(async.nodes().at(victim).aggr_crt.empty());
  engine.run_until(12.0);
  EXPECT_FALSE(async.is_down(victim));
  async.run_for(engine, 6.0 * (s.fw.anchors.diameter() + 2));
  expect_sync_fixpoint(async, s, options.n_cut, "scheduled crash");
}

TEST(AsyncOverlay, Validation) {
  AsyncSetup s = make_setup(8, 7);
  AsyncOverlayOptions bad;
  bad.gossip_period = 0.0;
  EXPECT_THROW(AsyncOverlay(&s.fw.anchors, &s.predicted, &s.classes, bad, 1),
               ContractViolation);
  bad = AsyncOverlayOptions{};
  bad.period_jitter = 1.0;
  EXPECT_THROW(AsyncOverlay(&s.fw.anchors, &s.predicted, &s.classes, bad, 1),
               ContractViolation);
  DistanceMatrix wrong(3);
  bad = AsyncOverlayOptions{};
  bad.rtt_ms = &wrong;
  EXPECT_THROW(AsyncOverlay(&s.fw.anchors, &s.predicted, &s.classes, bad, 1),
               ContractViolation);
  AsyncOverlay ok(&s.fw.anchors, &s.predicted, &s.classes, {}, 1);
  EventEngine engine;
  ok.start(engine);
  EXPECT_THROW(ok.start(engine), ContractViolation);  // double start
}

}  // namespace
}  // namespace bcc
