// Tests for the fleet telemetry plane: the telemetry byte codec
// (roundtrips + hostile-truncation rejection), fleet metrics merging,
// clock-offset estimation from send/receive span pairs, the merged
// Perfetto timeline, the crash flight recorder's on-disk format (including
// torn-state tolerance, poked in with white-box byte edits), and the
// socket scrape client's bounded-timeout / partial-fleet contract.
#include "obs/collect.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "net/tcp_transport.h"
#include "net/telemetry_client.h"
#include "obs/flight.h"

namespace bcc::obs {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

RegistrySnapshot sample_registry() {
  Registry r;
  r.counter("bcc.net.frames_sent").add(41);
  r.counter("bcc.trace.spans_dropped").add(3);
  r.gauge("bcc.conv.suspected_links").set(2.5);
  Histogram& h = r.histogram("bcc.conv.staleness_ms");
  for (std::uint64_t v : {0u, 1u, 7u, 900u, 900u, 1u << 20}) h.record(v);
  return r.snapshot();
}

SpanRecord make_span(std::uint64_t id, std::uint64_t parent,
                     std::uint64_t begin_us, const char* name,
                     bool remote = false) {
  SpanRecord s;
  s.id = id;
  s.parent = parent;
  s.trace_id = id;
  s.category = SpanCategory::kGossip;
  s.name = name;
  s.wall_begin_us = begin_us;
  s.wall_end_us = begin_us + 10;
  s.hop = remote ? 1 : 0;
  s.node = 0;
  s.remote_parent = remote;
  return s;
}

// ------------------------------------------------------------------ codec

TEST(CollectCodec, MetricsRoundtripIncludingSparseHistograms) {
  const RegistrySnapshot in = sample_registry();
  const std::vector<std::uint8_t> bytes = encode_node_metrics(in);
  RegistrySnapshot out;
  ASSERT_TRUE(decode_node_metrics(bytes.data(), bytes.size(), &out));
  EXPECT_EQ(out.counter_value("bcc.net.frames_sent"), 41u);
  EXPECT_EQ(out.counter_value("bcc.trace.spans_dropped"), 3u);
  EXPECT_DOUBLE_EQ(out.gauge_value("bcc.conv.suspected_links"), 2.5);
  const Histogram::Snapshot* h = out.histogram("bcc.conv.staleness_ms");
  ASSERT_NE(h, nullptr);
  const Histogram::Snapshot* orig = in.histogram("bcc.conv.staleness_ms");
  EXPECT_EQ(h->count, orig->count);
  EXPECT_EQ(h->sum, orig->sum);
  EXPECT_EQ(h->max, orig->max);
  EXPECT_EQ(h->buckets, orig->buckets);
}

TEST(CollectCodec, MetricsDecodeRejectsTruncationAndWrongVersion) {
  const std::vector<std::uint8_t> bytes =
      encode_node_metrics(sample_registry());
  RegistrySnapshot out;
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(decode_node_metrics(bytes.data(), len, &out))
        << "prefix of " << len << " bytes decoded";
  }
  std::vector<std::uint8_t> wrong = bytes;
  wrong[0] ^= 0xff;  // version word
  EXPECT_FALSE(decode_node_metrics(wrong.data(), wrong.size(), &out));
}

TEST(CollectCodec, TelemetryRoundtripPreservesSpansAndNames) {
  NodeTelemetry in;
  in.node = 3;
  in.pid = 4242;
  in.wall_now_us = 1234567;
  in.metrics = sample_registry();
  in.spans.push_back(make_span(100, 0, 1000, "gossip_round"));
  in.spans.push_back(make_span(101, 100, 1002, "send_exchange"));
  in.spans.push_back(make_span(200, 101, 1005, "recv_exchange",
                               /*remote=*/true));
  const std::string long_name(300, 'x');
  in.spans.push_back(make_span(102, 0, 2000, long_name.c_str()));

  const std::vector<std::uint8_t> bytes = encode_node_telemetry(in);
  NodeTelemetry out;
  ASSERT_TRUE(decode_node_telemetry(bytes.data(), bytes.size(), &out));
  EXPECT_EQ(out.node, 3u);
  EXPECT_EQ(out.pid, 4242u);
  EXPECT_EQ(out.wall_now_us, 1234567u);
  EXPECT_FALSE(out.recovered);
  EXPECT_EQ(out.metrics.counter_value("bcc.net.frames_sent"), 41u);
  ASSERT_EQ(out.spans.size(), 4u);
  EXPECT_EQ(out.spans[0].id, 100u);
  EXPECT_STREQ(out.spans[1].name, "send_exchange");
  EXPECT_TRUE(out.spans[2].remote_parent);
  EXPECT_EQ(out.spans[2].parent, 101u);
  EXPECT_EQ(out.spans[2].hop, 1u);
  EXPECT_EQ(out.spans[2].category, SpanCategory::kGossip);
  EXPECT_EQ(std::strlen(out.spans[3].name), 255u) << "names cap at 255";
}

TEST(CollectCodec, TelemetryDecodeRejectsEveryTruncation) {
  NodeTelemetry in;
  in.node = 1;
  in.metrics = sample_registry();
  in.spans.push_back(make_span(5, 0, 10, "s"));
  const std::vector<std::uint8_t> bytes = encode_node_telemetry(in);
  NodeTelemetry out;
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(decode_node_telemetry(bytes.data(), len, &out))
        << "prefix of " << len << " bytes decoded";
    EXPECT_TRUE(out.spans.empty()) << "failed decode must leave *out empty";
  }
  ASSERT_TRUE(decode_node_telemetry(bytes.data(), bytes.size(), &out));
}

// ------------------------------------------------------------------ merge

TEST(CollectMerge, CountersSumHistogramsMergeGaugesMax) {
  std::vector<NodeTelemetry> fleet;
  for (int i = 0; i < 3; ++i) {
    NodeTelemetry t;
    t.node = static_cast<std::uint32_t>(i);
    Registry r;
    r.counter("bcc.net.frames_sent").add(10 * (i + 1));
    r.gauge("bcc.conv.suspected_links").set(i == 1 ? 9.0 : 1.0);
    r.histogram("bcc.conv.staleness_ms").record(1u << (4 * i));
    t.metrics = r.snapshot();
    fleet.push_back(std::move(t));
  }
  const RegistrySnapshot merged = merge_fleet_metrics(fleet);
  EXPECT_EQ(merged.counter_value("bcc.net.frames_sent"), 10u + 20u + 30u);
  EXPECT_DOUBLE_EQ(merged.gauge_value("bcc.conv.suspected_links"), 9.0)
      << "hint-less gauges default to worst-observed (max), not averaged";
  const Histogram::Snapshot* h = merged.histogram("bcc.conv.staleness_ms");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 3u);
  EXPECT_EQ(h->sum, 1u + 16u + 256u);
  EXPECT_EQ(h->max, 256u);
}

/// Three-node fleet carrying one gauge registered under `agg` with values
/// {1, 9, 2} — chosen so each policy yields a distinct answer (max 9,
/// sum 12, last 2, mean 4).
std::vector<NodeTelemetry> gauge_fleet(GaugeAgg agg) {
  std::vector<NodeTelemetry> fleet;
  const double values[] = {1.0, 9.0, 2.0};
  for (int i = 0; i < 3; ++i) {
    NodeTelemetry t;
    t.node = static_cast<std::uint32_t>(i);
    Registry r;
    r.gauge("bcc.collect.policy_probe", agg).set(values[i]);
    t.metrics = r.snapshot();
    fleet.push_back(std::move(t));
  }
  return fleet;
}

TEST(CollectMerge, GaugePolicyMaxKeepsWorstObserved) {
  const RegistrySnapshot m = merge_fleet_metrics(gauge_fleet(GaugeAgg::kMax));
  EXPECT_DOUBLE_EQ(m.gauge_value("bcc.collect.policy_probe"), 9.0);
  EXPECT_EQ(m.gauge_agg("bcc.collect.policy_probe"), GaugeAgg::kMax);
}

TEST(CollectMerge, GaugePolicySumAddsOccupancy) {
  const RegistrySnapshot m = merge_fleet_metrics(gauge_fleet(GaugeAgg::kSum));
  EXPECT_DOUBLE_EQ(m.gauge_value("bcc.collect.policy_probe"), 12.0);
  EXPECT_EQ(m.gauge_agg("bcc.collect.policy_probe"), GaugeAgg::kSum);
}

TEST(CollectMerge, GaugePolicyLastTakesTheFinalNode) {
  const RegistrySnapshot m = merge_fleet_metrics(gauge_fleet(GaugeAgg::kLast));
  EXPECT_DOUBLE_EQ(m.gauge_value("bcc.collect.policy_probe"), 2.0);
}

TEST(CollectMerge, GaugePolicyMeanAveragesRatios) {
  const RegistrySnapshot m = merge_fleet_metrics(gauge_fleet(GaugeAgg::kMean));
  EXPECT_DOUBLE_EQ(m.gauge_value("bcc.collect.policy_probe"), 4.0);
  EXPECT_EQ(m.gauge_agg("bcc.collect.policy_probe"), GaugeAgg::kMean);
}

TEST(CollectMerge, MeanIgnoresNodesThatNeverRegisteredTheGauge) {
  // A cache-hit-ratio-style mean must divide by the number of nodes that
  // actually report the gauge, not the fleet size.
  std::vector<NodeTelemetry> fleet = gauge_fleet(GaugeAgg::kMean);
  NodeTelemetry silent;
  silent.node = 3;  // no metrics at all
  fleet.push_back(std::move(silent));
  const RegistrySnapshot m = merge_fleet_metrics(fleet);
  EXPECT_DOUBLE_EQ(m.gauge_value("bcc.collect.policy_probe"), 4.0);
}

TEST(CollectCodec, V2RoundtripCarriesAggExemplarsAndProfile) {
  NodeTelemetry in;
  in.node = 7;
  Registry r;
  r.gauge("bcc.serve.cache_hit_ratio", GaugeAgg::kMean).set(0.75);
  Histogram& h = r.histogram("bcc.serve.query_micros");
  h.record_with_exemplar(100, /*trace_id=*/0xabc);   // bucket bit_width(100)
  h.record_with_exemplar(5000, /*trace_id=*/0xdef);  // a second bucket
  h.record_with_exemplar(101, /*trace_id=*/0);       // tracing off: no slot
  in.metrics = r.snapshot();
  in.profile.push_back({"main;serve;walk", 40});
  in.profile.push_back({"main;gossip", 2});

  const std::vector<std::uint8_t> bytes = encode_node_telemetry(in);
  NodeTelemetry out;
  ASSERT_TRUE(decode_node_telemetry(bytes.data(), bytes.size(), &out));
  EXPECT_EQ(out.metrics.gauge_agg("bcc.serve.cache_hit_ratio"),
            GaugeAgg::kMean);
  EXPECT_DOUBLE_EQ(out.metrics.gauge_value("bcc.serve.cache_hit_ratio"),
                   0.75);
  const Histogram::Snapshot* hs =
      out.metrics.histogram("bcc.serve.query_micros");
  ASSERT_NE(hs, nullptr);
  std::size_t live_slots = 0;
  bool saw_abc = false, saw_def = false;
  for (const Exemplar& e : hs->exemplars) {
    if (!e.valid()) continue;
    ++live_slots;
    saw_abc = saw_abc || e.trace_id == 0xabc;
    saw_def = saw_def || e.trace_id == 0xdef;
  }
  EXPECT_EQ(live_slots, 2u) << "trace_id 0 must not occupy a slot";
  EXPECT_TRUE(saw_abc);
  EXPECT_TRUE(saw_def);
  ASSERT_EQ(out.profile.size(), 2u);
  EXPECT_EQ(out.profile[0].first, "main;serve;walk");
  EXPECT_EQ(out.profile[0].second, 40u);
}

TEST(CollectMerge, FleetProfilesAccumulateByStackHottestFirst) {
  std::vector<NodeTelemetry> fleet(3);
  fleet[0].profile = {{"main;walk", 10}, {"main;gossip", 5}};
  fleet[1].profile = {{"main;walk", 30}};
  fleet[2].profile = {{"main;idle", 1}};
  const auto merged = merge_fleet_profiles(fleet);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].first, "main;walk");
  EXPECT_EQ(merged[0].second, 40u);
  EXPECT_EQ(merged[1].first, "main;gossip");
  EXPECT_EQ(merged[2].first, "main;idle");
}

TEST(CollectMerge, ExemplarsMergeKeepingTheLatestStamp) {
  // Two nodes exemplar the same bucket; the fleet view keeps the one with
  // the newer wall_us so `bcc top`'s p99-trace column names a live query.
  std::vector<NodeTelemetry> fleet;
  for (int i = 0; i < 2; ++i) {
    NodeTelemetry t;
    t.node = static_cast<std::uint32_t>(i);
    Registry r;
    Histogram& h = r.histogram("bcc.serve.query_micros");
    h.record_with_exemplar(100, /*trace_id=*/100 + i);
    t.metrics = r.snapshot();
    // Force a deterministic winner regardless of clock resolution.
    for (Exemplar& e : t.metrics.histograms[0].second.exemplars) {
      if (e.valid()) e.wall_us = 1000 + static_cast<std::uint64_t>(i);
    }
    fleet.push_back(std::move(t));
  }
  const RegistrySnapshot merged = merge_fleet_metrics(fleet);
  const Histogram::Snapshot* h = merged.histogram("bcc.serve.query_micros");
  ASSERT_NE(h, nullptr);
  const Exemplar* e = h->exemplar_near(99.0);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->trace_id, 101u) << "newer stamp wins the shared bucket";
}

// ---------------------------------------------------------- clock offsets

/// Builds one fleet entry whose spans carry a fixed clock skew: local time
/// = true time + skew_us.
NodeTelemetry skewed_entry(std::uint32_t node, std::uint64_t skew_us) {
  NodeTelemetry t;
  t.node = node;
  t.pid = 1000 + node;
  t.wall_now_us = skew_us;
  return t;
}

TEST(CollectOffsets, RecoversKnownSkewsFromSendReceivePairs) {
  // Three processes with clocks at true+0, true+5000, true+10000 us, plus
  // an unlinked fourth. Symmetric 2us latency each way, so the NTP-style
  // halved difference recovers the skew exactly. Node 2 only ever talks to
  // node 1 — its offset must arrive transitively (BFS through node 1).
  std::vector<NodeTelemetry> fleet;
  fleet.push_back(skewed_entry(0, 0));
  fleet.push_back(skewed_entry(1, 5000));
  fleet.push_back(skewed_entry(2, 10000));
  fleet.push_back(skewed_entry(3, 777777));  // no exchanges at all

  // 0 -> 1: send at true 1000 on 0; receive at true 1002 on 1.
  fleet[0].spans.push_back(make_span(100, 0, 1000, "send_exchange"));
  fleet[1].spans.push_back(
      make_span(200, 100, 1002 + 5000, "recv_exchange", true));
  // 1 -> 0: send at true 2000 on 1; receive at true 2002 on 0.
  fleet[1].spans.push_back(make_span(210, 0, 2000 + 5000, "send_exchange"));
  fleet[0].spans.push_back(make_span(110, 210, 2002, "recv_exchange", true));
  // 1 -> 2 and 2 -> 1 (never touches node 0 directly).
  fleet[1].spans.push_back(make_span(220, 0, 3000 + 5000, "send_exchange"));
  fleet[2].spans.push_back(
      make_span(300, 220, 3002 + 10000, "recv_exchange", true));
  fleet[2].spans.push_back(make_span(310, 0, 4000 + 10000, "send_exchange"));
  fleet[1].spans.push_back(
      make_span(230, 310, 4002 + 5000, "recv_exchange", true));

  const std::vector<double> offsets = estimate_clock_offsets(fleet);
  ASSERT_EQ(offsets.size(), 4u);
  EXPECT_DOUBLE_EQ(offsets[0], 0.0);
  EXPECT_NEAR(offsets[1], -5000.0, 1.0);
  EXPECT_NEAR(offsets[2], -10000.0, 1.0) << "transitive via node 1";
  EXPECT_DOUBLE_EQ(offsets[3], 0.0) << "unlinked entries stay unshifted";
}

// ------------------------------------------------------- merged timeline

TEST(CollectTrace, FleetTimelineHasLanesFlowsAndFlightTag) {
  std::vector<NodeTelemetry> fleet;
  fleet.push_back(skewed_entry(0, 0));
  fleet[0].spans.push_back(make_span(100, 0, 5000, "send_exchange"));
  NodeTelemetry dead = skewed_entry(1, 0);
  dead.recovered = true;  // came off a flight ring
  dead.spans.push_back(make_span(200, 100, 5003, "recv_exchange", true));
  fleet.push_back(std::move(dead));

  const std::string json = fleet_chrome_trace_json(fleet, {});
  EXPECT_NE(json.find("\"name\":\"node 0 (pid 1000)\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"node 1 (pid 1001) [flight]\""),
            std::string::npos);
  EXPECT_NE(json.find("\"flight\":true"), std::string::npos);
  // Cross-process flow arrow: a flow-start on the sender's pid and a
  // flow-end on the receiver's, bound by the receiver's span id.
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":200"), std::string::npos);
  // Rebased: the earliest span (wall 5000) renders at ts 0.
  EXPECT_NE(json.find("\"ts\":0,"), std::string::npos);
  EXPECT_EQ(json.find("\"ts\":5000"), std::string::npos);
}

// -------------------------------------------------------- flight recorder

// White-box offsets mirroring flight.cpp's layout: slots start at the
// first kFlightSlotBytes boundary past header + metrics region, each slot
// leads with its u64 commit word, and the header's metrics seqlock word
// sits at byte 32. The torn-state tests below poke these bytes directly to
// simulate a writer dying mid-store.
std::size_t slots_offset(std::size_t metrics_cap) {
  const std::size_t raw = kFlightHeaderBytes + metrics_cap;
  return (raw + kFlightSlotBytes - 1) / kFlightSlotBytes * kFlightSlotBytes;
}
constexpr std::size_t kHdrMetricsSeqOffset = 32;

void poke_u64(const std::string& path, std::size_t offset, std::uint64_t v) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
  ASSERT_EQ(std::fwrite(&v, sizeof(v), 1, f), 1u);
  std::fclose(f);
}

std::string temp_flight_dir(const char* tag) {
  const std::string dir = ::testing::TempDir() + "collect_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(Flight, WriteReadRoundtripWithWrapAndMetrics) {
  const std::string dir = temp_flight_dir("roundtrip");
  const std::string path = dir + "/node7.flight";
  FlightRecorder::Options fo;
  fo.node = 7;
  fo.slot_count = 4;
  fo.metrics_cap = 1024;
  {
    auto rec = FlightRecorder::open(path, fo);
    ASSERT_NE(rec, nullptr);
    for (int i = 0; i < 7; ++i) {  // wraps: only the newest 4 survive
      rec->record_span(make_span(100 + static_cast<std::uint64_t>(i), 0,
                                 1000 + static_cast<std::uint64_t>(i),
                                 i % 2 == 0 ? "gossip_round" : "send_exchange"));
    }
    const std::vector<std::uint8_t> blob =
        encode_node_metrics(sample_registry());
    rec->record_metrics(blob.data(), blob.size());
    EXPECT_EQ(rec->spans_recorded(), 7u);
  }
  FlightData data;
  ASSERT_TRUE(read_flight_file(path, &data));
  EXPECT_EQ(data.node, 7u);
  EXPECT_EQ(data.pid, static_cast<std::uint32_t>(::getpid()));
  EXPECT_FALSE(data.metrics_torn);
  ASSERT_EQ(data.spans.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {  // seq order == write order
    EXPECT_EQ(data.spans[i].id, 103u + i);
  }
  EXPECT_STREQ(data.spans[1].name, "gossip_round");
  EXPECT_EQ(data.newest_seq, 7u);
  RegistrySnapshot metrics;
  ASSERT_TRUE(decode_node_metrics(data.metrics_blob.data(),
                                  data.metrics_blob.size(), &metrics));
  EXPECT_EQ(metrics.counter_value("bcc.net.frames_sent"), 41u);

  NodeTelemetry t = telemetry_from_flight(std::move(data));
  EXPECT_TRUE(t.recovered);
  EXPECT_EQ(t.node, 7u);
  EXPECT_EQ(t.spans.size(), 4u);
  EXPECT_EQ(t.metrics.counter_value("bcc.net.frames_sent"), 41u);
}

TEST(Flight, TornSlotAndTornMetricsAreSkippedNotDecoded) {
  const std::string dir = temp_flight_dir("torn");
  const std::string path = dir + "/node2.flight";
  FlightRecorder::Options fo;
  fo.node = 2;
  fo.slot_count = 8;
  fo.metrics_cap = 512;
  {
    auto rec = FlightRecorder::open(path, fo);
    ASSERT_NE(rec, nullptr);
    for (int i = 0; i < 3; ++i) {
      rec->record_span(
          make_span(1 + static_cast<std::uint64_t>(i), 0, 100, "s"));
    }
    const std::vector<std::uint8_t> blob =
        encode_node_metrics(sample_registry());
    rec->record_metrics(blob.data(), blob.size());
  }
  // A writer killed mid-payload leaves the slot's commit word at 0: the
  // reader must skip exactly that slot and keep the rest.
  poke_u64(path, slots_offset(fo.metrics_cap) + 1 * kFlightSlotBytes, 0);
  // A writer killed mid-metrics-copy leaves the seqlock odd: the reader
  // must report torn and refuse to decode.
  poke_u64(path, kHdrMetricsSeqOffset, 9);

  FlightData data;
  ASSERT_TRUE(read_flight_file(path, &data));
  ASSERT_EQ(data.spans.size(), 2u);
  EXPECT_EQ(data.spans[0].id, 1u);
  EXPECT_EQ(data.spans[1].id, 3u);
  EXPECT_TRUE(data.metrics_torn);
  EXPECT_TRUE(data.metrics_blob.empty());
  // telemetry_from_flight degrades to spans-only, never garbage metrics.
  const NodeTelemetry t = telemetry_from_flight(std::move(data));
  EXPECT_TRUE(t.metrics.empty());
  EXPECT_EQ(t.spans.size(), 2u);
}

TEST(Flight, ReaderRejectsBadMagicAndForeignVersions) {
  const std::string dir = temp_flight_dir("reject");
  const std::string path = dir + "/node0.flight";
  {
    auto rec = FlightRecorder::open(path, {});
    ASSERT_NE(rec, nullptr);
    rec->record_span(make_span(1, 0, 1, "s"));
  }
  FlightData data;
  ASSERT_TRUE(read_flight_file(path, &data));
  poke_u64(path, 0, kFlightMagic ^ 1);
  EXPECT_FALSE(read_flight_file(path, &data));
  poke_u64(path, 0, kFlightMagic);
  ASSERT_TRUE(read_flight_file(path, &data));
  poke_u64(path, 8, kFlightVersion + 1);  // u32 version; low word of u64 ok
  EXPECT_FALSE(read_flight_file(path, &data));
  EXPECT_FALSE(read_flight_file(dir + "/nonexistent.flight", &data));
}

TEST(Flight, AugmentMissingAddsOnlyDeadNodesAndSkipsGarbage) {
  const std::string dir = temp_flight_dir("augment");
  for (std::uint32_t node : {1u, 2u}) {
    FlightRecorder::Options fo;
    fo.node = node;
    auto rec =
        FlightRecorder::open(dir + "/node" + std::to_string(node) + ".flight",
                             fo);
    ASSERT_NE(rec, nullptr);
    rec->record_span(make_span(node * 100, 0, 50, "gossip_round"));
  }
  {  // a foreign file with the right suffix must be skipped, not fatal
    std::FILE* junk = std::fopen((dir + "/junk.flight").c_str(), "wb");
    ASSERT_NE(junk, nullptr);
    std::fputs("not a flight file", junk);
    std::fclose(junk);
  }

  std::vector<NodeTelemetry> fleet;
  NodeTelemetry live;
  live.node = 1;  // node 1 answered its scrape; its ring must be ignored
  fleet.push_back(std::move(live));
  EXPECT_EQ(augment_missing_from_flight(dir, &fleet), 1u);
  ASSERT_EQ(fleet.size(), 2u);
  EXPECT_EQ(fleet[1].node, 2u);
  EXPECT_TRUE(fleet[1].recovered);
  ASSERT_EQ(fleet[1].spans.size(), 1u);
  EXPECT_EQ(fleet[1].spans[0].id, 200u);
  // Idempotent: nothing new on a second pass.
  EXPECT_EQ(augment_missing_from_flight(dir, &fleet), 0u);
  EXPECT_EQ(augment_missing_from_flight(dir + "/missing", &fleet), 0u);
}

// ----------------------------------------------------------- scrape client

net::TcpTransportOptions listener_options(std::uint16_t port) {
  net::TcpTransportOptions o;
  o.local = 0;
  o.peers.resize(1);
  o.peers[0].port = port;
  o.heartbeat_period = 0.05;
  o.heartbeat_timeout = 0.25;
  o.connect_timeout = 0.3;
  o.backoff_initial = 0.02;
  o.backoff_max = 0.1;
  o.seed = 29;
  return o;
}

TEST(TelemetryScrape, LiveNodeAnswersOverTheFramedTransport) {
  // One in-process "node": a listening TcpTransport with a telemetry
  // provider, pumped from a background thread while the client scrapes.
  std::unique_ptr<net::TcpTransport> node;
  std::uint16_t port = 0;
  for (std::uint32_t attempt = 0; attempt < 20 && node == nullptr;
       ++attempt) {
    const std::uint32_t mix =
        static_cast<std::uint32_t>(::getpid()) * 131u + attempt * 977u + 13u;
    port = static_cast<std::uint16_t>(21000u + mix % 40000u);
    node = std::make_unique<net::TcpTransport>(listener_options(port));
    if (!node->listen()) node.reset();
  }
  ASSERT_NE(node, nullptr) << "no free port after 20 attempts";
  node->set_handler([](const net::Delivery&) {});
  node->set_telemetry_provider([] {
    NodeTelemetry t;
    t.node = 9;
    t.pid = 4321;
    Registry r;
    r.counter("bcc.net.frames_sent").add(5);
    t.metrics = r.snapshot();
    t.spans.push_back(make_span(700, 0, 42, "gossip_round"));
    return encode_node_telemetry(t);
  });
  std::atomic<bool> stop{false};
  std::thread pump([&] {
    while (!stop.load()) node->poll_once(0.003);
  });

  NodeTelemetry got;
  const bool ok =
      net::scrape_node({"127.0.0.1", port}, 5.0, &got);
  std::vector<NodeTelemetry> fleet;
  const std::size_t answered =
      net::scrape_fleet({{"127.0.0.1", port}}, 5.0, &fleet);
  stop.store(true);
  pump.join();

  ASSERT_TRUE(ok);
  EXPECT_EQ(got.node, 9u);
  EXPECT_EQ(got.pid, 4321u);
  EXPECT_EQ(got.metrics.counter_value("bcc.net.frames_sent"), 5u);
  ASSERT_EQ(got.spans.size(), 1u);
  EXPECT_STREQ(got.spans[0].name, "gossip_round");
  EXPECT_EQ(answered, 1u);
  ASSERT_EQ(fleet.size(), 1u);
  EXPECT_EQ(fleet[0].node, 9u);
}

TEST(TelemetryScrape, SilentAndDeadPortsFailFastYieldingPartialFleet) {
  // A "node" that accepted the connection but never replies — what a
  // SIGTERM-drained or SIGSTOPped process looks like mid-scrape — must
  // cost one bounded timeout, and a dead port must fail immediately; the
  // fleet that comes back is partial but well-formed.
  const int silent = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(silent, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // kernel-assigned: no collision re-roll needed
  ASSERT_EQ(::bind(silent, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(silent, reinterpret_cast<sockaddr*>(&addr), &len),
            0);
  const std::uint16_t silent_port = ntohs(addr.sin_port);
  ASSERT_EQ(::listen(silent, 4), 0);
  // A port with nothing behind it: bind (reserving it), resolve, close.
  const int dead = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in dead_addr = addr;
  dead_addr.sin_port = 0;
  ASSERT_EQ(::bind(dead, reinterpret_cast<sockaddr*>(&dead_addr),
                   sizeof(dead_addr)),
            0);
  ASSERT_EQ(::getsockname(dead, reinterpret_cast<sockaddr*>(&dead_addr),
                          &len),
            0);
  const std::uint16_t dead_port = ntohs(dead_addr.sin_port);
  ::close(dead);

  const double per_node_timeout = 0.4;
  NodeTelemetry out;
  out.node = 77;  // must be untouched by failed scrapes
  const double t0 = now_seconds();
  EXPECT_FALSE(
      net::scrape_node({"127.0.0.1", silent_port}, per_node_timeout, &out));
  const double silent_elapsed = now_seconds() - t0;
  EXPECT_FALSE(
      net::scrape_node({"127.0.0.1", dead_port}, per_node_timeout, &out));
  EXPECT_EQ(out.node, 77u);
  EXPECT_LT(silent_elapsed, per_node_timeout + 1.0)
      << "a silent peer must cost ~one timeout, not hang";

  std::vector<NodeTelemetry> fleet;
  const double f0 = now_seconds();
  EXPECT_EQ(net::scrape_fleet({{"127.0.0.1", silent_port},
                               {"127.0.0.1", dead_port}},
                              per_node_timeout, &fleet),
            0u);
  EXPECT_TRUE(fleet.empty());
  EXPECT_LT(now_seconds() - f0, 2 * per_node_timeout + 2.0)
      << "N nodes bound the scrape at N timeouts";
  ::close(silent);
}

}  // namespace
}  // namespace bcc::obs
