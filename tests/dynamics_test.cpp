#include "data/dynamics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace bcc {
namespace {

SynthDataset small_dataset(std::uint64_t seed, std::size_t hosts = 30) {
  Rng rng(seed);
  SynthOptions options;
  options.hosts = hosts;
  return synthesize_planetlab(options, rng);
}

TEST(Dynamics, StartsAtTheMeasuredMatrix) {
  const SynthDataset data = small_dataset(1);
  BandwidthDynamics dyn(data, {}, 2);
  EXPECT_EQ(dyn.epoch(), 0u);
  for (NodeId u = 0; u < data.bandwidth.size(); ++u) {
    for (NodeId v = u + 1; v < data.bandwidth.size(); ++v) {
      EXPECT_DOUBLE_EQ(dyn.current().at(u, v), data.bandwidth.at(u, v));
    }
  }
}

TEST(Dynamics, StepsStayPositiveAndChange) {
  const SynthDataset data = small_dataset(3);
  BandwidthDynamics dyn(data, {}, 4);
  const BandwidthMatrix before = dyn.current();
  const BandwidthMatrix& after = dyn.step();
  EXPECT_EQ(dyn.epoch(), 1u);
  bool changed = false;
  for (NodeId u = 0; u < after.size(); ++u) {
    for (NodeId v = u + 1; v < after.size(); ++v) {
      EXPECT_GT(after.at(u, v), 0.0);
      if (after.at(u, v) != before.at(u, v)) changed = true;
    }
  }
  EXPECT_TRUE(changed);
}

TEST(Dynamics, ZeroSigmaNoCongestionConvergesToBaseline) {
  const SynthDataset data = small_dataset(5);
  DynamicsOptions options;
  options.sigma = 0.0;
  options.congestion_rate = 0.0;
  options.rho = 0.5;
  BandwidthDynamics dyn(data, options, 6);
  for (int i = 0; i < 40; ++i) dyn.step();
  // Mean reversion pulls every pair to its structural (tree) baseline.
  const BandwidthMatrix baseline =
      inverse_rational_transform(data.tree_distances, data.c);
  for (NodeId u = 0; u < baseline.size(); ++u) {
    for (NodeId v = u + 1; v < baseline.size(); ++v) {
      EXPECT_NEAR(std::log(dyn.current().at(u, v)),
                  std::log(baseline.at(u, v)), 1e-6);
    }
  }
}

TEST(Dynamics, MeanReversionBoundsDrift) {
  // Even after many epochs the matrix stays within a sane band around the
  // baseline (the stationary log-variance is sigma^2 / (1 - rho^2)).
  const SynthDataset data = small_dataset(7);
  DynamicsOptions options;
  options.sigma = 0.1;
  options.rho = 0.8;
  options.congestion_rate = 0.0;
  BandwidthDynamics dyn(data, options, 8);
  for (int i = 0; i < 100; ++i) dyn.step();
  const BandwidthMatrix baseline =
      inverse_rational_transform(data.tree_distances, data.c);
  double worst_log_dev = 0.0;
  for (NodeId u = 0; u < baseline.size(); ++u) {
    for (NodeId v = u + 1; v < baseline.size(); ++v) {
      worst_log_dev = std::max(
          worst_log_dev, std::abs(std::log(dyn.current().at(u, v) /
                                           baseline.at(u, v))));
    }
  }
  // Stationary sigma ~= 0.1/sqrt(1-0.64) = 0.167; 6 sigma is generous.
  EXPECT_LT(worst_log_dev, 1.0);
}

TEST(Dynamics, CongestionDepressesAHostsLinks) {
  const SynthDataset data = small_dataset(9);
  DynamicsOptions options;
  options.sigma = 0.0;
  options.rho = 0.0;
  options.congestion_rate = 1.0;  // an episode starts every epoch
  options.congestion_factor = 0.25;
  BandwidthDynamics dyn(data, options, 10);
  dyn.step();
  const auto congested = dyn.congested();
  ASSERT_FALSE(congested.empty());
  const NodeId victim = congested.front();
  const BandwidthMatrix baseline =
      inverse_rational_transform(data.tree_distances, data.c);
  for (NodeId v = 0; v < data.bandwidth.size(); ++v) {
    if (v == victim) continue;
    EXPECT_LT(dyn.current().at(victim, v), baseline.at(victim, v) * 0.5)
        << "victim link " << v;
  }
}

TEST(Dynamics, CongestionEpisodesExpire) {
  const SynthDataset data = small_dataset(11);
  DynamicsOptions options;
  options.congestion_rate = 1.0;
  options.congestion_epochs = 2;
  BandwidthDynamics dyn(data, options, 12);
  dyn.step();
  EXPECT_FALSE(dyn.congested().empty());
  // With rate forced to 0 afterwards the episodes drain.
  // (Simulate by consuming epochs; rate 1.0 keeps spawning, so check decay
  //  through the counter length instead.)
  const auto first = dyn.congested();
  dyn.step();
  dyn.step();
  // The original victim may have been re-hit; at minimum the mechanism ran
  // without growing unboundedly.
  EXPECT_LE(dyn.congested().size(), data.bandwidth.size());
  (void)first;
}

TEST(Dynamics, DeterministicPerSeed) {
  const SynthDataset data = small_dataset(13);
  BandwidthDynamics a(data, {}, 14), b(data, {}, 14);
  for (int i = 0; i < 5; ++i) {
    a.step();
    b.step();
  }
  for (NodeId u = 0; u < data.bandwidth.size(); ++u) {
    for (NodeId v = u + 1; v < data.bandwidth.size(); ++v) {
      EXPECT_DOUBLE_EQ(a.current().at(u, v), b.current().at(u, v));
    }
  }
}

TEST(Dynamics, Validation) {
  const SynthDataset data = small_dataset(15);
  DynamicsOptions bad;
  bad.rho = 1.0;
  EXPECT_THROW(BandwidthDynamics(data, bad, 1), ContractViolation);
  bad = DynamicsOptions{};
  bad.congestion_factor = 0.0;
  EXPECT_THROW(BandwidthDynamics(data, bad, 1), ContractViolation);
  bad = DynamicsOptions{};
  bad.sigma = -0.1;
  EXPECT_THROW(BandwidthDynamics(data, bad, 1), ContractViolation);
}

}  // namespace
}  // namespace bcc
