#include "metric/distance_matrix.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "test_util.h"

namespace bcc {
namespace {

TEST(DistanceMatrix, ZeroDiagonal) {
  DistanceMatrix d(4, 1.0);
  for (NodeId u = 0; u < 4; ++u) EXPECT_DOUBLE_EQ(d.at(u, u), 0.0);
}

TEST(DistanceMatrix, SymmetricSetGet) {
  DistanceMatrix d(3);
  d.set(0, 2, 5.5);
  EXPECT_DOUBLE_EQ(d.at(0, 2), 5.5);
  EXPECT_DOUBLE_EQ(d.at(2, 0), 5.5);
}

TEST(DistanceMatrix, FillValueAppliesOffDiagonal) {
  DistanceMatrix d(3, 7.0);
  EXPECT_DOUBLE_EQ(d.at(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(d.at(1, 2), 7.0);
}

TEST(DistanceMatrix, EmptyAndSingletonAreValid) {
  DistanceMatrix d0(0);
  EXPECT_EQ(d0.size(), 0u);
  DistanceMatrix d1(1);
  EXPECT_DOUBLE_EQ(d1.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(d1.min_distance(), 0.0);
  EXPECT_DOUBLE_EQ(d1.max_distance(), 0.0);
}

TEST(DistanceMatrix, OutOfRangeRejected) {
  DistanceMatrix d(2);
  EXPECT_THROW(d.at(0, 2), ContractViolation);
  EXPECT_THROW(d.set(2, 0, 1.0), ContractViolation);
}

TEST(DistanceMatrix, DiagonalSetRejected) {
  DistanceMatrix d(2);
  EXPECT_THROW(d.set(1, 1, 1.0), ContractViolation);
}

TEST(DistanceMatrix, NegativeValueRejected) {
  DistanceMatrix d(2);
  EXPECT_THROW(d.set(0, 1, -0.5), ContractViolation);
}

TEST(DistanceMatrix, MinMaxDistance) {
  DistanceMatrix d(3);
  d.set(0, 1, 2.0);
  d.set(0, 2, 8.0);
  d.set(1, 2, 5.0);
  EXPECT_DOUBLE_EQ(d.min_distance(), 2.0);
  EXPECT_DOUBLE_EQ(d.max_distance(), 8.0);
}

TEST(DistanceMatrix, DiameterOfSubset) {
  DistanceMatrix d(4);
  d.set(0, 1, 1.0);
  d.set(0, 2, 2.0);
  d.set(0, 3, 3.0);
  d.set(1, 2, 4.0);
  d.set(1, 3, 5.0);
  d.set(2, 3, 6.0);
  const std::vector<NodeId> s = {0, 1, 2};
  EXPECT_DOUBLE_EQ(d.diameter_of(s), 4.0);
  const std::vector<NodeId> singleton = {2};
  EXPECT_DOUBLE_EQ(d.diameter_of(singleton), 0.0);
  const std::vector<NodeId> empty = {};
  EXPECT_DOUBLE_EQ(d.diameter_of(empty), 0.0);
}

TEST(DistanceMatrix, SubmatrixPreservesDistances) {
  Rng rng(5);
  const DistanceMatrix d = testutil::random_tree_metric(8, rng);
  const std::vector<NodeId> idx = {1, 4, 6};
  const DistanceMatrix sub = d.submatrix(idx);
  ASSERT_EQ(sub.size(), 3u);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    for (std::size_t j = 0; j < idx.size(); ++j) {
      EXPECT_DOUBLE_EQ(sub.at(i, j), d.at(idx[i], idx[j]));
    }
  }
}

TEST(DistanceMatrix, SubmatrixOutOfRangeRejected) {
  DistanceMatrix d(3);
  const std::vector<NodeId> idx = {0, 5};
  EXPECT_THROW(d.submatrix(idx), ContractViolation);
}

TEST(DistanceMatrix, FromRowsAveragesAsymmetry) {
  std::vector<std::vector<double>> rows = {{0, 2, 4}, {2.0000000001, 0, 6},
                                           {4, 6, 0}};
  const DistanceMatrix d = DistanceMatrix::from_rows(rows, 1e-6);
  EXPECT_NEAR(d.at(0, 1), 2.0, 1e-6);
}

TEST(DistanceMatrix, FromRowsRejectsAsymmetryBeyondTolerance) {
  std::vector<std::vector<double>> rows = {{0, 2}, {3, 0}};
  EXPECT_THROW(DistanceMatrix::from_rows(rows, 1e-9), ContractViolation);
}

TEST(DistanceMatrix, FromRowsRejectsNonZeroDiagonal) {
  std::vector<std::vector<double>> rows = {{1, 2}, {2, 0}};
  EXPECT_THROW(DistanceMatrix::from_rows(rows, 1e-9), ContractViolation);
}

TEST(DistanceMatrix, FromRowsRejectsRagged) {
  std::vector<std::vector<double>> rows = {{0, 2}, {2}};
  EXPECT_THROW(DistanceMatrix::from_rows(rows), ContractViolation);
}

TEST(DistanceMatrix, ToRowsRoundTrip) {
  Rng rng(9);
  const DistanceMatrix d = testutil::random_tree_metric(6, rng);
  const DistanceMatrix back = DistanceMatrix::from_rows(d.to_rows());
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = 0; v < 6; ++v) {
      EXPECT_DOUBLE_EQ(back.at(u, v), d.at(u, v));
    }
  }
}

TEST(DistanceMatrix, TriangleInequalityHoldsOnTreeMetric) {
  Rng rng(11);
  const DistanceMatrix d = testutil::random_tree_metric(12, rng);
  EXPECT_TRUE(d.satisfies_triangle_inequality(1e-6));
}

TEST(DistanceMatrix, TriangleInequalityDetectsViolation) {
  DistanceMatrix d(3);
  d.set(0, 1, 1.0);
  d.set(1, 2, 1.0);
  d.set(0, 2, 10.0);  // 10 > 1 + 1
  EXPECT_FALSE(d.satisfies_triangle_inequality());
}

TEST(DistanceMatrix, PairValuesCountsEachPairOnce) {
  DistanceMatrix d(4, 1.0);
  EXPECT_EQ(d.pair_values().size(), 6u);
}

}  // namespace
}  // namespace bcc
