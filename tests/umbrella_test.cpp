// Umbrella-header completeness: bcc.h alone must expose the whole public
// surface. One smoke statement per module keeps the header honest as the
// library grows.
#include "bcc.h"

#include <gtest/gtest.h>

namespace bcc {
namespace {

TEST(Umbrella, EveryModuleIsReachableThroughBccH) {
  // common
  Rng rng(1);
  (void)rng.uniform();
  TablePrinter table({"x"});
  table.add_row({"1"});
  // metric
  DistanceMatrix d(3, 2.0);
  EXPECT_TRUE(quartet_satisfies_4pc(DistanceMatrix(4, 1.0), 0, 1, 2, 3));
  BandwidthMatrix bw(3, 10.0);
  EXPECT_GT(rational_transform(bw).at(0, 1), 0.0);
  // tree
  PredictionTree pt;
  pt.add_first(0);
  AnchorTree at;
  at.set_root(0);
  // data
  SynthOptions synth;
  synth.hosts = 10;
  const SynthDataset data = synthesize_planetlab(synth, rng);
  LatencyOptions lat;
  lat.hosts = 5;
  (void)synthesize_latency(lat, rng);
  PartialBandwidthMatrix partial(3);
  (void)partial.total_missing();
  BandwidthDynamics dynamics(data, {}, 2);
  (void)dynamics.epoch();
  // core
  EXPECT_TRUE(find_cluster(data.distances, 2,
                           data.distances.max_distance())
                  .has_value());
  BandwidthClasses classes({10.0, 50.0});
  (void)classes.size();
  std::vector<NodeId> universe = {0, 1, 2};
  (void)partition_into_clusters(data.distances, universe, 1e9);
  (void)find_cluster_exhaustive(data.distances, universe, 2, 1e9);
  const std::vector<NodeId> targets = {0};
  (void)find_best_node(data.distances, universe, targets);
  // vivaldi / euclid
  Vivaldi vivaldi(4, rng, {});
  (void)vivaldi.distance(0, 1);
  std::vector<Point2> points = {{0, 0}, {1, 0}, {0, 1}};
  EXPECT_TRUE(find_cluster_euclidean(points, 2, 5.0).has_value());
  // sim
  EventEngine events;
  events.schedule_after(1.0, [] {});
  EXPECT_EQ(events.run(), 1u);
  Engine cycles;
  EXPECT_EQ(cycles.run(3), 0u);
  // stats
  const std::vector<double> values = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(median(values), 2.0);
  (void)bootstrap_mean_ci(values, rng);
  WprAccumulator wpr;
  (void)wpr.rate();
  // workload
  WorkflowOptions wf_options;
  wf_options.stages = 2;
  wf_options.tasks_per_stage = 2;
  const Workflow wf = Workflow::cybershake_like(wf_options, rng);
  const std::vector<NodeId> hosts = {0, 1};
  (void)estimate_makespan(wf, round_robin_assign(wf, hosts),
                          BandwidthMatrix(2, 10.0));
  // maintenance + serialization types exist
  FrameworkMaintainer maintainer(&data.distances);
  maintainer.join(0);
  EXPECT_EQ(maintainer.size(), 1u);
}

}  // namespace
}  // namespace bcc
