#include "workload/workflow.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace bcc {
namespace {

TEST(Workflow, GeneratesRequestedShape) {
  Rng rng(1);
  WorkflowOptions options;
  options.stages = 4;
  options.tasks_per_stage = 10;
  const Workflow wf = Workflow::cybershake_like(options, rng);
  EXPECT_EQ(wf.tasks().size(), 40u);
  EXPECT_EQ(wf.stage_count(), 4u);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(wf.stage_tasks(s).size(), 10u);
  }
  EXPECT_TRUE(wf.check_invariants());
}

TEST(Workflow, TransfersConnectConsecutiveStages) {
  Rng rng(2);
  WorkflowOptions options;
  options.stages = 3;
  options.tasks_per_stage = 6;
  options.fan_in = 2;
  const Workflow wf = Workflow::cybershake_like(options, rng);
  // 2 stage boundaries x 6 tasks x fan-in 2.
  EXPECT_EQ(wf.transfers().size(), 24u);
  for (const Transfer& t : wf.transfers()) {
    EXPECT_EQ(wf.tasks()[t.to].stage, wf.tasks()[t.from].stage + 1);
    EXPECT_GT(t.mbits, 0.0);
  }
}

TEST(Workflow, FanInSourcesAreDistinct) {
  Rng rng(3);
  WorkflowOptions options;
  options.stages = 2;
  options.tasks_per_stage = 8;
  options.fan_in = 3;
  const Workflow wf = Workflow::cybershake_like(options, rng);
  std::map<TaskId, std::set<TaskId>> sources;
  for (const Transfer& t : wf.transfers()) {
    EXPECT_TRUE(sources[t.to].insert(t.from).second)
        << "duplicate source for task " << t.to;
  }
  for (const auto& [to, srcs] : sources) EXPECT_EQ(srcs.size(), 3u);
}

TEST(Workflow, FanInClampedToStageWidth) {
  Rng rng(4);
  WorkflowOptions options;
  options.stages = 2;
  options.tasks_per_stage = 3;
  options.fan_in = 10;  // wider than the stage
  const Workflow wf = Workflow::cybershake_like(options, rng);
  EXPECT_EQ(wf.transfers().size(), 9u);  // 3 tasks x 3 available sources
  EXPECT_TRUE(wf.check_invariants());
}

TEST(Workflow, SingleStageHasNoTransfers) {
  Rng rng(5);
  WorkflowOptions options;
  options.stages = 1;
  const Workflow wf = Workflow::cybershake_like(options, rng);
  EXPECT_TRUE(wf.transfers().empty());
  EXPECT_DOUBLE_EQ(wf.total_transfer_mbits(), 0.0);
}

TEST(Workflow, ComputeTimesNearRequestedMean) {
  Rng rng(6);
  WorkflowOptions options;
  options.stages = 10;
  options.tasks_per_stage = 50;
  options.compute_mean_s = 200.0;
  const Workflow wf = Workflow::cybershake_like(options, rng);
  double sum = 0.0;
  for (const Task& t : wf.tasks()) sum += t.compute_seconds;
  EXPECT_NEAR(sum / static_cast<double>(wf.tasks().size()), 200.0, 20.0);
}

TEST(Workflow, TotalTransferSumsMbits) {
  Rng rng(7);
  WorkflowOptions options;
  const Workflow wf = Workflow::cybershake_like(options, rng);
  double sum = 0.0;
  for (const Transfer& t : wf.transfers()) sum += t.mbits;
  EXPECT_DOUBLE_EQ(wf.total_transfer_mbits(), sum);
  EXPECT_GT(sum, 0.0);
}

TEST(Workflow, Validation) {
  Rng rng(8);
  WorkflowOptions options;
  options.stages = 0;
  EXPECT_THROW(Workflow::cybershake_like(options, rng), ContractViolation);
  options.stages = 2;
  options.fan_in = 0;
  EXPECT_THROW(Workflow::cybershake_like(options, rng), ContractViolation);
  options.fan_in = 1;
  options.compute_mean_s = -5.0;
  EXPECT_THROW(Workflow::cybershake_like(options, rng), ContractViolation);
}

}  // namespace
}  // namespace bcc
