#include "tree/maintenance.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/system.h"
#include "test_util.h"

namespace bcc {
namespace {

/// Asserts the maintainer's framework is internally consistent and (on a
/// perfect tree metric) exactly embeds every alive pair.
void expect_exact(const FrameworkMaintainer& m, const DistanceMatrix& real) {
  EXPECT_TRUE(m.prediction().check_invariants());
  EXPECT_EQ(m.anchors().size(), m.size());
  const auto& alive = m.alive();
  for (std::size_t i = 0; i < alive.size(); ++i) {
    for (std::size_t j = i + 1; j < alive.size(); ++j) {
      EXPECT_NEAR(m.prediction().distance(alive[i], alive[j]),
                  real.at(alive[i], alive[j]), 1e-6)
          << "pair (" << alive[i] << "," << alive[j] << ")";
    }
  }
}

TEST(Maintenance, JoinsBuildTheFramework) {
  Rng rng(1);
  const DistanceMatrix real = testutil::random_tree_metric(12, rng);
  FrameworkMaintainer m(&real);
  for (NodeId h = 0; h < 12; ++h) m.join(h);
  EXPECT_EQ(m.size(), 12u);
  expect_exact(m, real);
}

TEST(Maintenance, LeafLeaveIsCheap) {
  Rng rng(2);
  const DistanceMatrix real = testutil::random_tree_metric(10, rng);
  FrameworkMaintainer m(&real);
  for (NodeId h = 0; h < 10; ++h) m.join(h);
  // Find an anchor-tree leaf: removing it forces no rejoin.
  NodeId leaf = 0;
  for (NodeId h : m.alive()) {
    if (m.anchors().children_of(h).empty()) {
      leaf = h;
      break;
    }
  }
  const auto rejoined = m.leave(leaf);
  EXPECT_TRUE(rejoined.empty());
  EXPECT_EQ(m.rejoins(), 0u);
  EXPECT_EQ(m.size(), 9u);
  EXPECT_FALSE(m.contains(leaf));
  expect_exact(m, real);
}

TEST(Maintenance, InnerLeaveRejoinsDescendants) {
  Rng rng(3);
  const DistanceMatrix real = testutil::random_tree_metric(20, rng);
  FrameworkMaintainer m(&real);
  for (NodeId h = 0; h < 20; ++h) m.join(h);
  // Pick a non-root host with descendants.
  NodeId inner = static_cast<NodeId>(-1);
  for (NodeId h : m.alive()) {
    if (h != m.anchors().root() && !m.anchors().children_of(h).empty()) {
      inner = h;
      break;
    }
  }
  ASSERT_NE(inner, static_cast<NodeId>(-1));
  const auto rejoined = m.leave(inner);
  EXPECT_FALSE(rejoined.empty());
  EXPECT_EQ(m.rejoins(), rejoined.size());
  EXPECT_EQ(m.size(), 19u);
  for (NodeId r : rejoined) EXPECT_TRUE(m.contains(r));
  expect_exact(m, real);
}

TEST(Maintenance, RootLeaveRebuildsSurvivors) {
  Rng rng(4);
  const DistanceMatrix real = testutil::random_tree_metric(15, rng);
  FrameworkMaintainer m(&real);
  for (NodeId h = 0; h < 15; ++h) m.join(h);
  const NodeId root = m.anchors().root();
  const auto rejoined = m.leave(root);
  EXPECT_EQ(rejoined.size(), 14u);
  EXPECT_EQ(m.size(), 14u);
  EXPECT_NE(m.anchors().root(), root);
  expect_exact(m, real);
}

TEST(Maintenance, EveryoneLeaves) {
  Rng rng(5);
  const DistanceMatrix real = testutil::random_tree_metric(6, rng);
  FrameworkMaintainer m(&real);
  for (NodeId h = 0; h < 6; ++h) m.join(h);
  std::vector<NodeId> order = {3, 0, 5, 1, 4, 2};  // includes the root (0)
  for (NodeId h : order) {
    m.leave(h);
    EXPECT_FALSE(m.contains(h));
    expect_exact(m, real);
  }
  EXPECT_EQ(m.size(), 0u);
  // The framework can restart from empty.
  m.join(2);
  m.join(4);
  EXPECT_EQ(m.size(), 2u);
  expect_exact(m, real);
}

TEST(Maintenance, RandomChurnKeepsExactness) {
  // Property: any interleaving of joins and leaves preserves exactness on a
  // perfect tree metric and structural invariants throughout.
  for (std::uint64_t seed : {6ull, 7ull, 8ull}) {
    Rng rng(seed);
    const std::size_t n = 24;
    const DistanceMatrix real = testutil::random_tree_metric(n, rng);
    FrameworkMaintainer m(&real);
    std::set<NodeId> in;
    Rng churn(seed + 100);
    for (int step = 0; step < 120; ++step) {
      const bool join = in.empty() || (in.size() < n && churn.chance(0.6));
      if (join) {
        NodeId h;
        do {
          h = static_cast<NodeId>(churn.below(n));
        } while (in.count(h));
        m.join(h);
        in.insert(h);
      } else {
        auto it = in.begin();
        std::advance(it, static_cast<long>(churn.below(in.size())));
        m.leave(*it);
        in.erase(it);
      }
      ASSERT_EQ(m.size(), in.size());
    }
    expect_exact(m, real);
  }
}

TEST(Maintenance, ChurnOnNoisyMetricStaysStructurallySound) {
  Rng rng(9);
  const DistanceMatrix real = testutil::noisy_tree_metric(20, rng, 0.4);
  FrameworkMaintainer m(&real);
  for (NodeId h = 0; h < 20; ++h) m.join(h);
  Rng churn(10);
  for (int step = 0; step < 40; ++step) {
    const auto& alive = m.alive();
    if (alive.size() > 5 && churn.chance(0.5)) {
      m.leave(alive[static_cast<std::size_t>(churn.below(alive.size()))]);
    } else {
      for (NodeId h = 0; h < 20; ++h) {
        if (!m.contains(h)) {
          m.join(h);
          break;
        }
      }
    }
    EXPECT_TRUE(m.prediction().check_invariants());
  }
}

TEST(Maintenance, RefreshAdoptsNewMetric) {
  Rng rng(11);
  const DistanceMatrix before = testutil::random_tree_metric(14, rng);
  DistanceMatrix after(14);
  for (NodeId u = 0; u < 14; ++u) {
    for (NodeId v = u + 1; v < 14; ++v) {
      after.set(u, v, 3.0 * before.at(u, v));  // network slowed down 3x
    }
  }
  FrameworkMaintainer m(&before);
  for (NodeId h = 0; h < 14; ++h) m.join(h);
  m.refresh(&after);
  expect_exact(m, after);
}

TEST(Maintenance, PredictedAliveMatchesPairQueries) {
  Rng rng(12);
  const DistanceMatrix real = testutil::random_tree_metric(10, rng);
  FrameworkMaintainer m(&real);
  for (NodeId h : {0ul, 3ul, 5ul, 7ul, 9ul}) m.join(h);
  m.leave(5);
  const auto& alive = m.alive();
  const DistanceMatrix pred = m.predicted_alive();
  ASSERT_EQ(pred.size(), alive.size());
  for (std::size_t i = 0; i < alive.size(); ++i) {
    for (std::size_t j = i + 1; j < alive.size(); ++j) {
      EXPECT_NEAR(pred.at(i, j), m.prediction().distance(alive[i], alive[j]),
                  1e-12);
    }
  }
}

TEST(Maintenance, CompactViewRemapsConsistently) {
  Rng rng(14);
  const DistanceMatrix real = testutil::random_tree_metric(12, rng);
  FrameworkMaintainer m(&real);
  for (NodeId h = 0; h < 12; ++h) m.join(h);
  m.leave(4);
  m.leave(9);
  const auto view = m.compact_view();
  ASSERT_EQ(view.ids.size(), 10u);
  ASSERT_EQ(view.anchors.size(), 10u);
  ASSERT_EQ(view.predicted.size(), 10u);
  // Parent relations survive the re-keying.
  for (std::size_t i = 0; i < view.ids.size(); ++i) {
    const NodeId global = view.ids[i];
    const NodeId parent = m.anchors().parent_of(global);
    if (parent == AnchorTree::kNoParent) {
      EXPECT_EQ(view.anchors.root(), i);
    } else {
      const auto it =
          std::find(view.ids.begin(), view.ids.end(), parent);
      ASSERT_NE(it, view.ids.end());
      EXPECT_EQ(view.anchors.parent_of(i),
                static_cast<NodeId>(it - view.ids.begin()));
    }
  }
  // Distances line up with the global prediction tree.
  for (std::size_t i = 0; i < view.ids.size(); ++i) {
    for (std::size_t j = i + 1; j < view.ids.size(); ++j) {
      EXPECT_NEAR(view.predicted.at(i, j),
                  m.prediction().distance(view.ids[i], view.ids[j]), 1e-12);
    }
  }
}

TEST(Maintenance, CompactViewDrivesASystem) {
  Rng rng(15);
  const DistanceMatrix real = testutil::random_tree_metric(16, rng);
  FrameworkMaintainer m(&real);
  for (NodeId h = 0; h < 16; ++h) m.join(h);
  m.leave(3);
  const auto view = m.compact_view();
  const double dmax = view.predicted.max_distance();
  DecentralizedClusterSystem sys(view.anchors, view.predicted,
                                 BandwidthClasses({kDefaultTransformC / dmax}),
                                 {});
  sys.run_to_convergence();
  const auto r = sys.query(QueryRequest::at_class(0, 5, 0));
  EXPECT_TRUE(r.found());
}

TEST(Maintenance, Validation) {
  Rng rng(13);
  const DistanceMatrix real = testutil::random_tree_metric(5, rng);
  FrameworkMaintainer m(&real);
  EXPECT_THROW(m.leave(0), ContractViolation);  // not a member
  m.join(0);
  EXPECT_THROW(m.join(0), ContractViolation);   // duplicate
  EXPECT_THROW(m.join(99), ContractViolation);  // outside the oracle
  DistanceMatrix wrong(4);
  EXPECT_THROW(m.refresh(&wrong), ContractViolation);
  EXPECT_THROW(m.refresh(nullptr), ContractViolation);
}

}  // namespace
}  // namespace bcc
