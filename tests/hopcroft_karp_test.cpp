#include "euclid/hopcroft_karp.h"

#include <gtest/gtest.h>

#include <functional>

#include "common/rng.h"

namespace bcc {
namespace {

/// Exponential oracle: maximum matching by trying all subsets of left
/// vertices (small graphs only).
std::size_t matching_bruteforce(const BipartiteGraph& g) {
  const std::size_t nl = g.left_size();
  std::size_t best = 0;
  // Recursive assignment search.
  std::vector<char> used_right(g.right_size(), 0);
  std::function<void(std::size_t, std::size_t)> rec = [&](std::size_t l,
                                                          std::size_t matched) {
    if (l == nl) {
      best = std::max(best, matched);
      return;
    }
    if (matched + (nl - l) <= best) return;
    rec(l + 1, matched);  // leave l unmatched
    for (std::size_t r : g.neighbors(l)) {
      if (used_right[r]) continue;
      used_right[r] = 1;
      rec(l + 1, matched + 1);
      used_right[r] = 0;
    }
  };
  rec(0, 0);
  return best;
}

TEST(HopcroftKarp, EmptyGraph) {
  BipartiteGraph g(0, 0);
  EXPECT_EQ(hopcroft_karp(g).size, 0u);
  EXPECT_EQ(maximum_independent_set(g).size, 0u);
}

TEST(HopcroftKarp, NoEdges) {
  BipartiteGraph g(3, 4);
  EXPECT_EQ(hopcroft_karp(g).size, 0u);
  EXPECT_EQ(maximum_independent_set(g).size, 7u);  // everything independent
}

TEST(HopcroftKarp, PerfectMatching) {
  BipartiteGraph g(3, 3);
  for (std::size_t i = 0; i < 3; ++i) g.add_edge(i, i);
  const MatchingResult m = hopcroft_karp(g);
  EXPECT_EQ(m.size, 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(m.match_left[i], i);
}

TEST(HopcroftKarp, AugmentingPathNeeded) {
  // l0-{r0,r1}, l1-{r0}: greedy l0->r0 must be augmented.
  BipartiteGraph g(2, 2);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_EQ(hopcroft_karp(g).size, 2u);
}

TEST(HopcroftKarp, CompleteBipartite) {
  BipartiteGraph g(4, 6);
  for (std::size_t l = 0; l < 4; ++l) {
    for (std::size_t r = 0; r < 6; ++r) g.add_edge(l, r);
  }
  EXPECT_EQ(hopcroft_karp(g).size, 4u);
  // MIS of K_{4,6} is the larger side.
  EXPECT_EQ(maximum_independent_set(g).size, 6u);
}

TEST(HopcroftKarp, MatchingConsistency) {
  BipartiteGraph g(3, 3);
  g.add_edge(0, 1);
  g.add_edge(1, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  const MatchingResult m = hopcroft_karp(g);
  for (std::size_t l = 0; l < 3; ++l) {
    if (m.match_left[l] != MatchingResult::npos) {
      EXPECT_EQ(m.match_right[m.match_left[l]], l);
    }
  }
}

TEST(HopcroftKarp, MisIsActuallyIndependent) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t nl = 1 + rng.below(8), nr = 1 + rng.below(8);
    BipartiteGraph g(nl, nr);
    for (std::size_t l = 0; l < nl; ++l) {
      for (std::size_t r = 0; r < nr; ++r) {
        if (rng.chance(0.3)) g.add_edge(l, r);
      }
    }
    const IndependentSet mis = maximum_independent_set(g);
    for (std::size_t l = 0; l < nl; ++l) {
      if (!mis.left[l]) continue;
      for (std::size_t r : g.neighbors(l)) {
        EXPECT_FALSE(mis.right[r]) << "edge inside MIS";
      }
    }
  }
}

TEST(HopcroftKarp, MatchesBruteForceOnRandomGraphs) {
  Rng rng(2);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t nl = 1 + rng.below(7), nr = 1 + rng.below(7);
    BipartiteGraph g(nl, nr);
    for (std::size_t l = 0; l < nl; ++l) {
      for (std::size_t r = 0; r < nr; ++r) {
        if (rng.chance(0.35)) g.add_edge(l, r);
      }
    }
    EXPECT_EQ(hopcroft_karp(g).size, matching_bruteforce(g)) << "trial "
                                                             << trial;
  }
}

TEST(HopcroftKarp, KoenigSizeIdentity) {
  // |MIS| = |V| - |max matching| on every bipartite graph.
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t nl = 1 + rng.below(10), nr = 1 + rng.below(10);
    BipartiteGraph g(nl, nr);
    for (std::size_t l = 0; l < nl; ++l) {
      for (std::size_t r = 0; r < nr; ++r) {
        if (rng.chance(0.25)) g.add_edge(l, r);
      }
    }
    const std::size_t matching = hopcroft_karp(g).size;
    EXPECT_EQ(maximum_independent_set(g).size, nl + nr - matching);
  }
}

TEST(HopcroftKarp, OutOfRangeEdgeRejected) {
  BipartiteGraph g(2, 2);
  EXPECT_THROW(g.add_edge(2, 0), ContractViolation);
  EXPECT_THROW(g.add_edge(0, 2), ContractViolation);
}

TEST(HopcroftKarp, LargeBalancedRandomGraphRuns) {
  Rng rng(4);
  const std::size_t n = 200;
  BipartiteGraph g(n, n);
  for (std::size_t l = 0; l < n; ++l) {
    for (int e = 0; e < 5; ++e) {
      g.add_edge(l, static_cast<std::size_t>(rng.below(n)));
    }
  }
  const MatchingResult m = hopcroft_karp(g);
  EXPECT_GT(m.size, n / 2);
  EXPECT_LE(m.size, n);
}

}  // namespace
}  // namespace bcc
