#include "workload/scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

namespace bcc {
namespace {

/// Tiny handcrafted workflow: 2 stages x 2 tasks, known transfers.
struct FixedWorkflow {
  Workflow wf;
  FixedWorkflow() {
    Rng rng(1);
    WorkflowOptions options;
    options.stages = 2;
    options.tasks_per_stage = 2;
    options.fan_in = 1;
    wf = Workflow::cybershake_like(options, rng);
  }
};

BandwidthMatrix uniform_bw(std::size_t n, double mbps) {
  return BandwidthMatrix(n, mbps);
}

TEST(Scheduler, RoundRobinCoversAllHostsPerStage) {
  Rng rng(2);
  WorkflowOptions options;
  options.stages = 2;
  options.tasks_per_stage = 6;
  const Workflow wf = Workflow::cybershake_like(options, rng);
  const std::vector<NodeId> hosts = {3, 7, 9};
  const Assignment a = round_robin_assign(wf, hosts);
  ASSERT_EQ(a.task_host.size(), 12u);
  for (std::size_t s = 0; s < 2; ++s) {
    std::map<NodeId, int> count;
    for (TaskId t : wf.stage_tasks(s)) ++count[a.task_host[t]];
    EXPECT_EQ(count.size(), 3u);
    for (const auto& [h, c] : count) EXPECT_EQ(c, 2);
  }
}

TEST(Scheduler, EmptyHostListRejected) {
  FixedWorkflow f;
  const std::vector<NodeId> none;
  EXPECT_THROW(round_robin_assign(f.wf, none), ContractViolation);
}

TEST(Scheduler, SingleHostMakespanIsComputeOnly) {
  // All tasks co-located: transfers are free; makespan = sum over stages of
  // the stage's max compute.
  FixedWorkflow f;
  const std::vector<NodeId> hosts = {0};
  const Assignment a = round_robin_assign(f.wf, hosts);
  const double makespan = estimate_makespan(f.wf, a, uniform_bw(2, 10.0));
  double expected = 0.0;
  for (std::size_t s = 0; s < f.wf.stage_count(); ++s) {
    double stage = 0.0;
    for (TaskId t : f.wf.stage_tasks(s)) {
      stage = std::max(stage, f.wf.tasks()[t].compute_seconds);
    }
    expected += stage;
  }
  EXPECT_NEAR(makespan, expected, 1e-9);
}

TEST(Scheduler, MakespanDecreasesWithBandwidth) {
  Rng rng(3);
  WorkflowOptions options;
  options.stages = 3;
  options.tasks_per_stage = 8;
  const Workflow wf = Workflow::cybershake_like(options, rng);
  const std::vector<NodeId> hosts = {0, 1, 2, 3};
  const Assignment a = round_robin_assign(wf, hosts);
  const double slow = estimate_makespan(wf, a, uniform_bw(4, 10.0));
  const double fast = estimate_makespan(wf, a, uniform_bw(4, 100.0));
  EXPECT_GT(slow, fast);
}

TEST(Scheduler, MakespanGatedByWorstLink) {
  // Two hosts with a known link; one cross-host transfer per boundary.
  Rng rng(4);
  WorkflowOptions options;
  options.stages = 2;
  options.tasks_per_stage = 2;
  options.fan_in = 2;
  const Workflow wf = Workflow::cybershake_like(options, rng);
  const std::vector<NodeId> hosts = {0, 1};
  const Assignment a = round_robin_assign(wf, hosts);
  BandwidthMatrix bw(2, 50.0);
  const double m50 = estimate_makespan(wf, a, bw);
  bw.set(0, 1, 25.0);  // halve the link
  const double m25 = estimate_makespan(wf, a, bw);
  // The transfer component exactly doubles.
  double compute = 0.0;
  for (std::size_t s = 0; s < 2; ++s) {
    double stage = 0.0;
    for (TaskId t : wf.stage_tasks(s)) {
      stage = std::max(stage, wf.tasks()[t].compute_seconds);
    }
    compute += stage;
  }
  EXPECT_NEAR(m25 - compute, 2.0 * (m50 - compute), 1e-9);
}

TEST(Scheduler, BottleneckIdentifiesWorstPair) {
  Rng rng(5);
  WorkflowOptions options;
  options.stages = 2;
  options.tasks_per_stage = 4;
  const Workflow wf = Workflow::cybershake_like(options, rng);
  const std::vector<NodeId> hosts = {0, 1, 2, 3};
  const Assignment a = round_robin_assign(wf, hosts);
  BandwidthMatrix bw(4, 100.0);
  bw.set(0, 1, 1.0);  // a terrible link
  const Bottleneck b = find_bottleneck(wf, a, bw);
  // If any 0-1 transfer exists, the bottleneck must be that pair.
  bool pair_01_used = false;
  for (const Transfer& t : wf.transfers()) {
    const NodeId x = a.task_host[t.from], y = a.task_host[t.to];
    if ((x == 0 && y == 1) || (x == 1 && y == 0)) pair_01_used = true;
  }
  if (pair_01_used) {
    EXPECT_EQ(std::min(b.a, b.b), 0u);
    EXPECT_EQ(std::max(b.a, b.b), 1u);
    EXPECT_GT(b.seconds, 0.0);
  }
}

TEST(Scheduler, AssignmentSizeValidated) {
  FixedWorkflow f;
  Assignment bad;
  bad.task_host = {0};  // wrong arity
  EXPECT_THROW(estimate_makespan(f.wf, bad, uniform_bw(2, 10.0)),
               ContractViolation);
  Assignment oob;
  oob.task_host.assign(f.wf.tasks().size(), 9);  // host out of matrix range
  EXPECT_THROW(estimate_makespan(f.wf, oob, uniform_bw(2, 10.0)),
               ContractViolation);
}

TEST(Scheduler, BetterHostSetBeatsWorse) {
  // The library's thesis in miniature: same workflow, same scheduler, a
  // high-bandwidth host set wins.
  Rng rng(6);
  WorkflowOptions options;
  options.stages = 3;
  options.tasks_per_stage = 9;
  const Workflow wf = Workflow::cybershake_like(options, rng);
  BandwidthMatrix bw(6, 5.0);  // slow fabric
  // Hosts 0-2 form a fast island.
  bw.set(0, 1, 200.0);
  bw.set(0, 2, 200.0);
  bw.set(1, 2, 200.0);
  const std::vector<NodeId> fast = {0, 1, 2};
  const std::vector<NodeId> mixed = {0, 3, 4};
  EXPECT_LT(estimate_makespan(wf, round_robin_assign(wf, fast), bw),
            estimate_makespan(wf, round_robin_assign(wf, mixed), bw));
}

}  // namespace
}  // namespace bcc
