#include "euclid/kdiameter.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace bcc {
namespace {

double cluster_diameter(const std::vector<Point2>& pts, const Cluster& c) {
  double diam = 0.0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    for (std::size_t j = i + 1; j < c.size(); ++j) {
      diam = std::max(diam, dist2d(pts[c[i]], pts[c[j]]));
    }
  }
  return diam;
}

TEST(KDiameter, FindsObviousCluster) {
  // Three points in a tight blob + two far away.
  std::vector<Point2> pts = {{0, 0}, {1, 0}, {0, 1}, {100, 100}, {-100, 50}};
  const auto c = find_cluster_euclidean(pts, 3, 2.0);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->size(), 3u);
  EXPECT_LE(cluster_diameter(pts, *c), 2.0);
}

TEST(KDiameter, ReturnsNulloptWhenImpossible) {
  std::vector<Point2> pts = {{0, 0}, {10, 0}, {0, 10}};
  EXPECT_FALSE(find_cluster_euclidean(pts, 2, 1.0).has_value());
  EXPECT_FALSE(find_cluster_euclidean(pts, 4, 100.0).has_value());  // k > n
}

TEST(KDiameter, ExactDiameterBoundaryIncluded) {
  std::vector<Point2> pts = {{0, 0}, {3, 0}};
  EXPECT_TRUE(find_cluster_euclidean(pts, 2, 3.0).has_value());
  EXPECT_FALSE(find_cluster_euclidean(pts, 2, 2.999).has_value());
}

TEST(KDiameter, RequiresKAtLeast2) {
  std::vector<Point2> pts = {{0, 0}};
  EXPECT_THROW(find_cluster_euclidean(pts, 1, 1.0), ContractViolation);
  EXPECT_THROW(find_cluster_euclidean(pts, 2, -1.0), ContractViolation);
}

TEST(KDiameter, DuplicatePointsFormClusters) {
  std::vector<Point2> pts = {{5, 5}, {5, 5}, {5, 5}, {9, 9}};
  const auto c = find_cluster_euclidean(pts, 3, 0.0);
  ASSERT_TRUE(c.has_value());
  EXPECT_DOUBLE_EQ(cluster_diameter(pts, *c), 0.0);
}

TEST(KDiameter, ColinearPointsHandled) {
  // All on one line: the bipartite split degenerates to "free" points.
  std::vector<Point2> pts = {{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}};
  const auto c = find_cluster_euclidean(pts, 4, 3.0);
  ASSERT_TRUE(c.has_value());
  EXPECT_LE(cluster_diameter(pts, *c), 3.0);
  EXPECT_EQ(max_cluster_size_euclidean(pts, 3.0), 4u);
  EXPECT_EQ(max_cluster_size_euclidean(pts, 4.0), 5u);
}

TEST(KDiameter, MaxSizeTrivialCases) {
  EXPECT_EQ(max_cluster_size_euclidean({}, 1.0), 0u);
  EXPECT_EQ(max_cluster_size_euclidean({{0, 0}}, 1.0), 1u);
  // Two distant points: only singletons fit.
  EXPECT_EQ(max_cluster_size_euclidean({{0, 0}, {9, 9}}, 1.0), 1u);
}

TEST(KDiameter, ClusterIsSetOfDistinctIndices) {
  Rng rng(1);
  const auto pts = testutil::random_points(30, rng, 10.0);
  const auto c = find_cluster_euclidean(pts, 8, 6.0);
  if (c) {
    auto sorted = *c;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
    for (NodeId i : *c) EXPECT_LT(i, pts.size());
  }
}

class KDiameterProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KDiameterProperty, MatchesBruteForceMaxSize) {
  // The lens + bipartite-MIS construction is exact: the achievable max
  // cluster size equals the true max clique in the <=l graph.
  Rng rng(GetParam());
  const std::size_t n = 6 + rng.below(9);  // 6..14
  const auto pts = testutil::random_points(n, rng, 10.0);
  for (double l : {2.0, 4.0, 7.0, 12.0}) {
    EXPECT_EQ(max_cluster_size_euclidean(pts, l),
              max_cluster_size_euclidean_bruteforce(pts, l))
        << "n=" << n << " l=" << l;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, KDiameterProperty,
                         ::testing::Range<std::uint64_t>(1, 26));

class KDiameterValidity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KDiameterValidity, ReturnedClustersAlwaysSatisfyConstraints) {
  Rng rng(GetParam() + 1000);
  const std::size_t n = 10 + rng.below(30);
  const auto pts = testutil::random_points(n, rng, 20.0);
  for (std::size_t k : {2ul, 3ul, 5ul, 8ul}) {
    for (double l : {3.0, 8.0, 15.0}) {
      const auto c = find_cluster_euclidean(pts, k, l);
      if (!c) continue;
      EXPECT_EQ(c->size(), k);
      EXPECT_LE(cluster_diameter(pts, *c), l + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, KDiameterValidity,
                         ::testing::Range<std::uint64_t>(1, 16));

TEST(KDiameter, FindAgreesWithMaxSize) {
  Rng rng(77);
  const auto pts = testutil::random_points(25, rng, 10.0);
  for (double l : {2.0, 5.0, 9.0}) {
    const std::size_t best = max_cluster_size_euclidean(pts, l);
    if (best >= 2) {
      EXPECT_TRUE(find_cluster_euclidean(pts, best, l).has_value());
    }
    EXPECT_FALSE(find_cluster_euclidean(pts, best + 1, l).has_value());
  }
}

}  // namespace
}  // namespace bcc
