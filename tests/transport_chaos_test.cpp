// Multi-process honest-chaos suite (`ctest -L transport`): spawns a real
// 5-process `bcc node` cluster over TCP loopback and drives the canned
// supervisor scenarios — convergence to the exact sync fixpoint, kill -9 of
// a 2-node minority with cold rejoin, a listener-close + isolation
// partition with half-open detection, a SIGSTOP/SIGCONT stall, and a
// SIGTERM drain with metrics flushes.
//
// The bcc binary is located next to this test binary's build tree
// (<exe_dir>/../tools/bcc); BCC_BIN overrides. BCC_CHAOS_SEEDS widens the
// converge sweep for nightly runs (same knob the in-sim chaos suite uses).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>

#include "net/supervisor.h"

namespace bcc {
namespace {

std::string bcc_binary() {
  if (const char* env = std::getenv("BCC_BIN")) return env;
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "";
  std::string exe(buf, static_cast<std::size_t>(n));
  const std::size_t slash = exe.rfind('/');
  if (slash == std::string::npos) return "";
  return exe.substr(0, slash) + "/../tools/bcc";
}

net::SupervisorOptions make_options(std::uint64_t seed) {
  net::SupervisorOptions o;
  o.n = 5;
  o.world_seed = seed;
  o.bcc_bin = bcc_binary();
  o.converge_deadline = 60.0;
  return o;
}

void run_named(const std::string& name, std::uint64_t seed,
               const std::string& metrics_dir = "") {
  net::SupervisorOptions o = make_options(seed);
  o.metrics_dir = metrics_dir;
  const std::string failure = net::run_scenario(name, o);
  EXPECT_EQ(failure, "") << "scenario " << name << " seed " << seed;
}

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v ? std::atoi(v) : fallback;
}

TEST(TransportChaos, FiveProcessClusterConvergesToTheSyncFixpoint) {
  const int seeds = env_int("BCC_CHAOS_SEEDS", 1);
  for (int s = 0; s < seeds; ++s) {
    run_named("converge", 1 + static_cast<std::uint64_t>(s));
  }
}

TEST(TransportChaos, KilledMinorityRejoinsColdAndReconverges) {
  run_named("kill-rejoin", 1);
}

TEST(TransportChaos, ListenerClosePartitionHealsWithReconnects) {
  // metrics_dir turns on the drain-and-count step: every node must exit 0
  // on SIGTERM and the cluster must have counted bcc.net.reconnects > 0.
  const std::string dir =
      ::testing::TempDir() + "transport_chaos_partition_metrics";
  ASSERT_EQ(::system(("mkdir -p " + dir).c_str()), 0);
  run_named("partition-heal", 1, dir);
}

TEST(TransportChaos, StalledNodeResumesAndReconverges) {
  run_named("stall-resume", 1);
}

TEST(TransportChaos, SigtermDrainFlushesMetricsAndExitsZero) {
  const std::string dir = ::testing::TempDir() + "transport_chaos_drain_metrics";
  ASSERT_EQ(::system(("mkdir -p " + dir).c_str()), 0);
  run_named("drain", 1, dir);
}

TEST(TransportChaos, SigkilledNodeIsRecoveredFromItsFlightRing) {
  // The crash-forensics acceptance path: kill -9 one node mid-gossip,
  // scrape the survivors' telemetry endpoints, recover the victim's spans
  // from its on-disk flight ring, and demand the merged timeline contain a
  // causally linked cross-process send->receive chain with the victim on
  // one end. run_scenario("kill-collect") asserts all of that internally;
  // here we also pin the artifacts it writes.
  const std::string dir = ::testing::TempDir() + "transport_chaos_kill_collect";
  ASSERT_EQ(::system(("rm -rf " + dir).c_str()), 0);
  ASSERT_EQ(::system(("mkdir -p " + dir + "/flight " + dir + "/out").c_str()),
            0);
  net::SupervisorOptions o = make_options(1);
  o.flight_dir = dir + "/flight";
  o.telemetry_out = dir + "/out";
  const std::string failure = net::run_scenario("kill-collect", o);
  EXPECT_EQ(failure, "");

  std::ifstream trace(dir + "/out/fleet_trace.json");
  ASSERT_TRUE(trace.good()) << "merged timeline artifact missing";
  const std::string json((std::istreambuf_iterator<char>(trace)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("[flight]"), std::string::npos)
      << "victim's lane must be tagged as flight-recovered";
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos)
      << "no cross-process flow arrows in the merged timeline";
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  std::ifstream metrics(dir + "/out/fleet_metrics.json");
  ASSERT_TRUE(metrics.good()) << "fleet metrics artifact missing";
  const std::string mjson((std::istreambuf_iterator<char>(metrics)),
                          std::istreambuf_iterator<char>());
  EXPECT_NE(mjson.find("bcc.trace.spans_dropped"), std::string::npos)
      << "merged registry must surface the span-drop counter";
}

}  // namespace
}  // namespace bcc
