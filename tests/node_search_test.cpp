#include "core/node_search.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace bcc {
namespace {

using testutil::iota_universe;

TEST(NodeSearch, PicksObviousBest) {
  // Node 3 is close to both targets, node 2 is far from target 1.
  DistanceMatrix d(4);
  d.set(0, 1, 4.0);
  d.set(0, 2, 1.0);
  d.set(1, 2, 9.0);
  d.set(0, 3, 2.0);
  d.set(1, 3, 2.0);
  d.set(2, 3, 5.0);
  const std::vector<NodeId> targets = {0, 1};
  const auto best = find_best_node(d, iota_universe(4), targets);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->node, 3u);
  EXPECT_DOUBLE_EQ(best->max_distance, 2.0);
}

TEST(NodeSearch, MinBandwidthIsTransformOfMaxDistance) {
  DistanceMatrix d(3);
  d.set(0, 1, 5.0);
  d.set(0, 2, 10.0);
  d.set(1, 2, 20.0);
  const std::vector<NodeId> targets = {0, 1};
  const auto best = find_best_node(d, iota_universe(3), targets);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->node, 2u);
  EXPECT_DOUBLE_EQ(best->min_bandwidth(1000.0), 50.0);  // 1000 / 20
}

TEST(NodeSearch, AllTargetsMeansNoCandidate) {
  DistanceMatrix d(2, 1.0);
  const std::vector<NodeId> targets = {0, 1};
  EXPECT_FALSE(find_best_node(d, iota_universe(2), targets).has_value());
}

TEST(NodeSearch, EmptyTargetsRejected) {
  DistanceMatrix d(3, 1.0);
  const std::vector<NodeId> none;
  EXPECT_THROW(find_best_node(d, iota_universe(3), none), ContractViolation);
}

TEST(NodeSearch, OutOfRangeRejected) {
  DistanceMatrix d(3, 1.0);
  const std::vector<NodeId> targets = {9};
  EXPECT_THROW(find_best_node(d, iota_universe(3), targets),
               ContractViolation);
}

TEST(NodeSearch, BruteForceAgreement) {
  Rng rng(1);
  for (int trial = 0; trial < 15; ++trial) {
    Rng trial_rng = rng.split(trial);
    const std::size_t n = 8 + trial_rng.below(10);
    const DistanceMatrix d = testutil::noisy_tree_metric(n, trial_rng, 0.3);
    const std::vector<NodeId> targets = {0, 1, 2};
    const auto best = find_best_node(d, iota_universe(n), targets);
    ASSERT_TRUE(best.has_value());
    // No other node does strictly better.
    for (NodeId x = 3; x < n; ++x) {
      double worst = 0.0;
      for (NodeId t : targets) worst = std::max(worst, d.at(x, t));
      EXPECT_GE(worst, best->max_distance);
    }
  }
}

TEST(NodeSearch, WithinRadiusSortedBestFirst) {
  Rng rng(2);
  const DistanceMatrix d = testutil::random_tree_metric(20, rng);
  const std::vector<NodeId> targets = {0, 1};
  const double l = d.max_distance() * 0.7;
  const auto within = find_nodes_within(d, iota_universe(20), targets, l);
  for (std::size_t i = 0; i + 1 < within.size(); ++i) {
    EXPECT_LE(within[i].max_distance, within[i + 1].max_distance);
  }
  for (const auto& r : within) {
    EXPECT_LE(r.max_distance, l);
    EXPECT_NE(r.node, 0u);
    EXPECT_NE(r.node, 1u);
  }
}

TEST(NodeSearch, WithinRadiusTightensToEmpty) {
  Rng rng(3);
  const DistanceMatrix d = testutil::random_tree_metric(10, rng);
  const std::vector<NodeId> targets = {0};
  const auto none =
      find_nodes_within(d, iota_universe(10), targets, d.min_distance() / 2);
  EXPECT_TRUE(none.empty());
}

TEST(NodeSearch, WithinRadiusConsistentWithBest) {
  Rng rng(4);
  const DistanceMatrix d = testutil::noisy_tree_metric(15, rng, 0.2);
  const std::vector<NodeId> targets = {2, 5, 9};
  const auto best = find_best_node(d, iota_universe(15), targets);
  ASSERT_TRUE(best.has_value());
  const auto within =
      find_nodes_within(d, iota_universe(15), targets, best->max_distance);
  ASSERT_FALSE(within.empty());
  EXPECT_EQ(within.front().node, best->node);
}

TEST(NodeSearch, RestrictedUniverse) {
  DistanceMatrix d(4);
  d.set(0, 1, 1.0);
  d.set(0, 2, 2.0);
  d.set(0, 3, 9.0);
  d.set(1, 2, 1.0);
  d.set(1, 3, 9.0);
  d.set(2, 3, 9.0);
  const std::vector<NodeId> targets = {0};
  const std::vector<NodeId> universe = {0, 3};  // best node 1 not in universe
  const auto best = find_best_node(d, universe, targets);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->node, 3u);
}

}  // namespace
}  // namespace bcc
