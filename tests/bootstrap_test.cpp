#include "stats/bootstrap.h"

#include <gtest/gtest.h>

namespace bcc {
namespace {

TEST(Bootstrap, MeanCiCoversPointEstimate) {
  Rng rng(1);
  std::vector<double> values;
  Rng data(2);
  for (int i = 0; i < 200; ++i) values.push_back(data.normal(10.0, 2.0));
  const ConfidenceInterval ci = bootstrap_mean_ci(values, rng);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
  EXPECT_NEAR(ci.point, 10.0, 0.5);
  // 95% CI of mean of 200 N(10, 2) samples: roughly +-0.28.
  EXPECT_LT(ci.hi - ci.lo, 1.2);
  EXPECT_GT(ci.hi - ci.lo, 0.2);
}

TEST(Bootstrap, MedianCiCoversPointEstimate) {
  Rng rng(3);
  std::vector<double> values;
  Rng data(4);
  for (int i = 0; i < 300; ++i) values.push_back(data.lognormal(0.0, 1.0));
  const ConfidenceInterval ci = bootstrap_median_ci(values, rng);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
  EXPECT_NEAR(ci.point, 1.0, 0.3);  // median of lognormal(0,1) is 1
}

TEST(Bootstrap, WiderConfidenceWiderInterval) {
  std::vector<double> values;
  Rng data(5);
  for (int i = 0; i < 100; ++i) values.push_back(data.uniform());
  Rng r1(6), r2(6);
  const auto narrow = bootstrap_mean_ci(values, r1, 0.80);
  const auto wide = bootstrap_mean_ci(values, r2, 0.99);
  EXPECT_LT(narrow.hi - narrow.lo, wide.hi - wide.lo);
}

TEST(Bootstrap, MoreSamplesTightenTheInterval) {
  Rng data(7);
  std::vector<double> small, large;
  for (int i = 0; i < 20; ++i) small.push_back(data.normal(0.0, 1.0));
  for (int i = 0; i < 2000; ++i) large.push_back(data.normal(0.0, 1.0));
  Rng r1(8), r2(8);
  const auto ci_small = bootstrap_mean_ci(small, r1);
  const auto ci_large = bootstrap_mean_ci(large, r2);
  EXPECT_GT(ci_small.hi - ci_small.lo, ci_large.hi - ci_large.lo);
}

TEST(Bootstrap, SingletonCollapses) {
  Rng rng(9);
  const std::vector<double> one = {42.0};
  const auto ci = bootstrap_mean_ci(one, rng);
  EXPECT_DOUBLE_EQ(ci.lo, 42.0);
  EXPECT_DOUBLE_EQ(ci.hi, 42.0);
  EXPECT_DOUBLE_EQ(ci.point, 42.0);
}

TEST(Bootstrap, ConstantDataHasZeroWidth) {
  Rng rng(10);
  const std::vector<double> constant(50, 3.0);
  const auto ci = bootstrap_mean_ci(constant, rng);
  EXPECT_DOUBLE_EQ(ci.lo, 3.0);
  EXPECT_DOUBLE_EQ(ci.hi, 3.0);
}

TEST(Bootstrap, ProportionCi) {
  Rng rng(11);
  const auto ci = bootstrap_proportion_ci(80, 100, rng);
  EXPECT_NEAR(ci.point, 0.8, 1e-12);
  EXPECT_GT(ci.lo, 0.6);
  EXPECT_LT(ci.hi, 0.95);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
}

TEST(Bootstrap, ProportionExtremes) {
  Rng r1(12), r2(13);
  const auto all = bootstrap_proportion_ci(10, 10, r1);
  EXPECT_DOUBLE_EQ(all.point, 1.0);
  EXPECT_DOUBLE_EQ(all.hi, 1.0);
  const auto none = bootstrap_proportion_ci(0, 10, r2);
  EXPECT_DOUBLE_EQ(none.point, 0.0);
  EXPECT_DOUBLE_EQ(none.lo, 0.0);
}

TEST(Bootstrap, Validation) {
  Rng rng(14);
  const std::vector<double> v = {1.0, 2.0};
  EXPECT_THROW(bootstrap_mean_ci(v, rng, 0.0), ContractViolation);
  EXPECT_THROW(bootstrap_mean_ci(v, rng, 1.0), ContractViolation);
  EXPECT_THROW(bootstrap_mean_ci(v, rng, 0.95, 5), ContractViolation);
  EXPECT_THROW(bootstrap_mean_ci(std::vector<double>{}, rng),
               ContractViolation);
  EXPECT_THROW(bootstrap_proportion_ci(5, 4, rng), ContractViolation);
  EXPECT_THROW(bootstrap_proportion_ci(0, 0, rng), ContractViolation);
}

TEST(Bootstrap, DeterministicForSeed) {
  std::vector<double> values;
  Rng data(15);
  for (int i = 0; i < 50; ++i) values.push_back(data.uniform());
  Rng r1(16), r2(16);
  const auto a = bootstrap_mean_ci(values, r1);
  const auto b = bootstrap_mean_ci(values, r2);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

}  // namespace
}  // namespace bcc
