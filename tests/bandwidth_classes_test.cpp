#include "core/bandwidth_classes.h"

#include <gtest/gtest.h>

namespace bcc {
namespace {

TEST(BandwidthClasses, SortsAndDeduplicates) {
  BandwidthClasses c({50.0, 10.0, 50.0, 30.0});
  ASSERT_EQ(c.size(), 3u);
  EXPECT_DOUBLE_EQ(c.bandwidth_at(0), 10.0);
  EXPECT_DOUBLE_EQ(c.bandwidth_at(1), 30.0);
  EXPECT_DOUBLE_EQ(c.bandwidth_at(2), 50.0);
}

TEST(BandwidthClasses, DistanceIsRationalTransform) {
  BandwidthClasses c({10.0, 100.0}, 1000.0);
  EXPECT_DOUBLE_EQ(c.distance_at(0), 100.0);
  EXPECT_DOUBLE_EQ(c.distance_at(1), 10.0);
  EXPECT_DOUBLE_EQ(c.transform_c(), 1000.0);
}

TEST(BandwidthClasses, HigherBandwidthMeansSmallerDistanceClass) {
  BandwidthClasses c = BandwidthClasses::uniform_grid(10, 100, 10);
  for (std::size_t i = 0; i + 1 < c.size(); ++i) {
    EXPECT_GT(c.distance_at(i), c.distance_at(i + 1));
  }
}

TEST(BandwidthClasses, SnapUpSemantics) {
  BandwidthClasses c({10.0, 20.0, 40.0});
  // Exact hit.
  EXPECT_EQ(c.class_for_bandwidth(20.0).value(), 1u);
  // Between classes: snapped up (stricter), not down.
  EXPECT_EQ(c.class_for_bandwidth(21.0).value(), 2u);
  EXPECT_EQ(c.class_for_bandwidth(5.0).value(), 0u);
  // Above the strictest class: unanswerable.
  EXPECT_FALSE(c.class_for_bandwidth(41.0).has_value());
}

TEST(BandwidthClasses, SnappedClassIsConservative) {
  BandwidthClasses c({10.0, 20.0, 40.0});
  for (double b : {1.0, 10.0, 15.0, 39.9, 40.0}) {
    const auto idx = c.class_for_bandwidth(b);
    ASSERT_TRUE(idx.has_value());
    EXPECT_GE(c.bandwidth_at(*idx), b);
  }
}

TEST(BandwidthClasses, UniformGridEndpoints) {
  BandwidthClasses c = BandwidthClasses::uniform_grid(5, 300, 5);
  EXPECT_EQ(c.size(), 60u);
  EXPECT_DOUBLE_EQ(c.bandwidth_at(0), 5.0);
  EXPECT_DOUBLE_EQ(c.bandwidth_at(59), 300.0);
}

TEST(BandwidthClasses, UniformGridSingleClass) {
  BandwidthClasses c = BandwidthClasses::uniform_grid(50, 50, 10);
  EXPECT_EQ(c.size(), 1u);
}

TEST(BandwidthClasses, Validation) {
  EXPECT_THROW(BandwidthClasses({}), ContractViolation);
  EXPECT_THROW(BandwidthClasses({-5.0}), ContractViolation);
  EXPECT_THROW(BandwidthClasses({5.0}, 0.0), ContractViolation);
  EXPECT_THROW(BandwidthClasses::uniform_grid(0, 10, 5), ContractViolation);
  EXPECT_THROW(BandwidthClasses::uniform_grid(10, 5, 5), ContractViolation);
  EXPECT_THROW(BandwidthClasses::uniform_grid(5, 10, 0), ContractViolation);
  BandwidthClasses c({10.0});
  EXPECT_THROW(c.bandwidth_at(1), ContractViolation);
  EXPECT_THROW(c.class_for_bandwidth(0.0), ContractViolation);
}

}  // namespace
}  // namespace bcc
