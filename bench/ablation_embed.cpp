// Ablation A3 (DESIGN.md): end-node search during prediction-tree joins —
// exhaustive Gromov-maximizer scan (centralized Sequoia) vs anchor-tree
// descent (the decentralized framework). Measures measurement probes per
// join and the resulting prediction accuracy across noise levels.
//
//   ./ablation_embed --size 150
#include <cstdio>

#include "common/options.h"
#include "common/table.h"
#include "obs/bench_report.h"
#include "data/planetlab_synth.h"
#include "stats/accuracy.h"
#include "stats/summary.h"
#include "tree/embedder.h"

int main(int argc, char** argv) {
  using namespace bcc;
  Options opts("ablation_embed",
               "end-node search: exhaustive vs anchor descent");
  auto& size = opts.add_int("size", 150, "dataset size");
  auto& rounds = opts.add_int("rounds", 5, "frameworks per configuration");
  auto& seed = opts.add_int("seed", 42, "experiment seed");
  auto& csv = opts.add_bool("csv", false, "emit CSV instead of tables");
  opts.parse(argc, argv);
  obs::BenchReport report("ablation_embed");

  std::printf("== Ablation A3: Gromov end-node search x placement refinement "
              "(n=%lld) ==\n",
              static_cast<long long>(size));
  TablePrinter table({"noise_sigma", "search", "placement", "probes/join",
                      "median_rel_err", "p90_rel_err"});

  for (double sigma : {0.0, 0.15, 0.3, 0.6}) {
    Rng data_rng(static_cast<std::uint64_t>(seed));
    SynthOptions data_options;
    data_options.hosts = static_cast<std::size_t>(size);
    data_options.noise_sigma = sigma;
    const SynthDataset data = synthesize_planetlab(data_options, data_rng);

    for (EndSearch search : {EndSearch::kExhaustive, EndSearch::kAnchorDescent}) {
      for (bool refine : {true, false}) {
        EmbedOptions embed_options;
        embed_options.search = search;
        embed_options.refine = refine;
        EmbedStats stats;
        std::vector<double> errors;
        Rng master(static_cast<std::uint64_t>(seed) + 1);
        for (std::int64_t round = 0; round < rounds; ++round) {
          Rng round_rng = master.split(static_cast<std::uint64_t>(round));
          const Framework fw =
              build_framework(data.distances, round_rng, embed_options,
                              &stats);
          auto errs = relative_bandwidth_errors(
              data.bandwidth, fw.predicted_distances(), data.c);
          errors.insert(errors.end(), errs.begin(), errs.end());
        }
        table.add_row({format_double(sigma, 2),
                       search == EndSearch::kExhaustive ? "exhaustive"
                                                        : "anchor-descent",
                       refine ? "robust-fit" : "raw-gromov",
                       format_double(static_cast<double>(stats.probes) /
                                         static_cast<double>(stats.joins),
                                     1),
                       format_double(median(errors), 4),
                       format_double(percentile(errors, 90.0), 4)});
      }
    }
  }
  std::fputs(csv ? table.to_csv().c_str() : table.to_string().c_str(), stdout);
  obs::export_table(report, "main", table);
  report.write();
  return 0;
}
