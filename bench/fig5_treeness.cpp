// Reproduces Fig. 5 (paper §IV.C): the effect of treeness — six same-size
// datasets of graded ε_avg answer a (k, b) sweep; raw WPR–f_b curves do not
// separate by treeness, but (WPR)^{f_a*} (α = 3.2) orders them: larger ε_avg
// plots above. Also prints the Equation 1 model prediction next to the
// measured values.
//
//   ./fig5_treeness                         # noise-graded variants (default)
//   ./fig5_treeness --mode subset           # the paper's subset recipe
#include <cstdio>

#include "common/options.h"
#include "common/table.h"
#include "obs/bench_report.h"
#include "exp/fig5.h"

int main(int argc, char** argv) {
  using namespace bcc;
  Options opts("fig5_treeness", "Fig. 5: effect of dataset treeness on WPR");
  auto& mode = opts.add_string("mode", "noise", "noise | subset");
  auto& variants = opts.add_int("variants", 6, "datasets of graded treeness");
  auto& size = opts.add_int("size", 100, "nodes per dataset (paper: 100)");
  auto& rounds = opts.add_int("rounds", 10, "frameworks per dataset");
  auto& k = opts.add_int("k", 5, "cluster size constraint (paper: 5)");
  auto& b_steps = opts.add_int("b_steps", 12, "points on the b axis");
  auto& alpha = opts.add_double("alpha", 3.2, "f_a* constant (paper: 3.2)");
  auto& seed = opts.add_int("seed", 42, "experiment seed");
  auto& csv = opts.add_bool("csv", false, "emit CSV instead of tables");
  opts.parse(argc, argv);
  obs::BenchReport report("fig5_treeness");

  exp::Fig5Params params;
  params.mode = (mode == "subset") ? exp::Fig5Mode::kSubsetSweep
                                   : exp::Fig5Mode::kNoiseSweep;
  params.variants = static_cast<std::size_t>(variants);
  params.dataset_size = static_cast<std::size_t>(size);
  params.rounds = static_cast<std::size_t>(rounds);
  params.k = static_cast<std::size_t>(k);
  params.b_steps = static_cast<std::size_t>(b_steps);
  params.alpha = alpha;
  params.b_min = 5.0;   // paper: b = 5..300 Mbps
  params.b_max = 300.0;

  // Subset mode needs a base trace to subset; give it a noisy HP-like one.
  Rng base_rng(static_cast<std::uint64_t>(seed) + 3);
  SynthOptions base_options;
  base_options.hosts =
      std::max<std::size_t>(params.dataset_size * 2, params.dataset_size + 20);
  base_options.noise_sigma = 0.4;
  const SynthDataset base = synthesize_planetlab(base_options, base_rng);

  const exp::Fig5Result r =
      exp::run_fig5(base, params, static_cast<std::uint64_t>(seed));

  std::printf("== Fig. 5: WPR vs f_b per treeness variant "
              "(legend value = eps_avg, as in the paper) ==\n");
  for (const auto& series : r.series) {
    std::printf("\n-- dataset eps_avg = %.4f --\n", series.epsilon_avg);
    TablePrinter table({"b_mbps", "f_b", "f_a", "WPR", "(WPR)^f_a*",
                        "model_WPR (Eq.1)"});
    for (const auto& p : series.points) {
      table.add_numeric_row({p.b, p.f_b, p.f_a, p.wpr, p.wpr_normalized, p.wpr_model});
    }
    std::fputs(csv ? table.to_csv().c_str() : table.to_string().c_str(),
               stdout);
  }

  // Summary: mean normalized WPR over the informative mid-range per variant
  // — this is the ordering Fig. 5b/5d exposes.
  std::printf("\n== Fig. 5 summary: treeness ordering of normalized WPR ==\n");
  TablePrinter summary({"eps_avg", "mean (WPR)^f_a* (0.05<f_b<0.95)"});
  for (const auto& series : r.series) {
    double sum = 0.0;
    std::size_t count = 0;
    for (const auto& p : series.points) {
      if (p.f_b > 0.05 && p.f_b < 0.95) {
        sum += p.wpr_normalized;
        ++count;
      }
    }
    summary.add_numeric_row({series.epsilon_avg,
                     count ? sum / static_cast<double>(count) : 0.0});
  }
  std::fputs(csv ? summary.to_csv().c_str() : summary.to_string().c_str(),
             stdout);
  obs::export_table(report, "summary", summary);
  report.write();
  return 0;
}
