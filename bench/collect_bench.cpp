// Telemetry-plane benchmarks (google-benchmark): the collect codec, fleet
// merging, clock-offset estimation, and the flight recorder's commit path
// — plus the A/B pair that prices the flight-recorder sink against a bare
// traced span, the microscopic half of the <2% collector-overhead budget
// (the macroscopic half is the supervisor's `overhead` scenario on a live
// 8-process cluster, recorded in EXPERIMENTS.md). Results mirror into
// BENCH_collect.json; tools/bench_smoke.sh diffs the codec/merge/flight
// subset against the committed bench/BENCH_collect.json baseline.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json_reporter.h"
#include "obs/collect.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using namespace bcc;

/// A registry shaped like a live node's: a handful of counters/gauges and
/// a few populated histograms. Names live under bcc.bench.* so the
/// metric-name lint's one-literal-per-instrument rule keeps holding for
/// the production instruments this fabricated registry imitates.
obs::RegistrySnapshot bench_registry(std::uint64_t salt) {
  obs::Registry r;
  r.counter("bcc.bench.collect_frames_sent").add(1000 + salt);
  r.counter("bcc.bench.collect_frames_received").add(990 + salt);
  r.counter("bcc.bench.collect_reconnects").add(salt % 3);
  r.counter("bcc.bench.collect_spans_dropped").add(salt % 7);
  r.gauge("bcc.bench.collect_suspected").set(static_cast<double>(salt % 5));
  obs::Histogram& stale = r.histogram("bcc.bench.collect_staleness_ms");
  obs::Histogram& conv = r.histogram("bcc.bench.collect_convergence_ms");
  std::uint64_t x = salt * 2654435761u + 1;
  for (int i = 0; i < 256; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    stale.record((x >> 33) % 4000);
    conv.record((x >> 20) % 30000);
  }
  return r.snapshot();
}

obs::SpanRecord bench_span(std::uint64_t id, bool remote) {
  obs::SpanRecord s;
  s.id = id;
  s.parent = remote ? id - 1 : 0;
  s.trace_id = id;
  s.category = obs::SpanCategory::kGossip;
  s.name = remote ? "recv_exchange" : "send_exchange";
  s.wall_begin_us = 1000 + id * 37;
  s.wall_end_us = s.wall_begin_us + 120;
  s.hop = remote ? 1 : 0;
  s.node = static_cast<std::uint32_t>(id % 8);
  s.remote_parent = remote;
  return s;
}

obs::NodeTelemetry bench_telemetry(std::uint32_t node, std::size_t spans) {
  obs::NodeTelemetry t;
  t.node = node;
  t.pid = 10000 + node;
  t.wall_now_us = 123456789;
  t.metrics = bench_registry(node);
  for (std::size_t i = 0; i < spans; ++i) {
    t.spans.push_back(bench_span((static_cast<std::uint64_t>(node) + 1)
                                     << 40 |
                                 (i + 1),
                                 i % 2 == 1));
  }
  return t;
}

void BM_EncodeTelemetry(benchmark::State& state) {
  const obs::NodeTelemetry t =
      bench_telemetry(0, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const std::vector<std::uint8_t> bytes = obs::encode_node_telemetry(t);
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncodeTelemetry)->Arg(256);

void BM_DecodeTelemetry(benchmark::State& state) {
  const std::vector<std::uint8_t> bytes = obs::encode_node_telemetry(
      bench_telemetry(0, static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    obs::NodeTelemetry out;
    obs::decode_node_telemetry(bytes.data(), bytes.size(), &out);
    benchmark::DoNotOptimize(out.spans.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodeTelemetry)->Arg(256);

void BM_MergeFleet(benchmark::State& state) {
  std::vector<obs::NodeTelemetry> fleet;
  for (std::uint32_t n = 0; n < 8; ++n) fleet.push_back(bench_telemetry(n, 0));
  for (auto _ : state) {
    const obs::RegistrySnapshot merged = obs::merge_fleet_metrics(fleet);
    benchmark::DoNotOptimize(merged.counters.data());
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * fleet.size()));
}
BENCHMARK(BM_MergeFleet);

void BM_EstimateClockOffsets(benchmark::State& state) {
  // 8 processes x 256 spans, half of them remote-parented receive spans
  // whose senders live in the neighboring entry — the matched-pair shape
  // the estimator grinds through on a real fleet.
  std::vector<obs::NodeTelemetry> fleet;
  for (std::uint32_t n = 0; n < 8; ++n) fleet.push_back(bench_telemetry(n, 256));
  for (auto _ : state) {
    const std::vector<double> offsets = obs::estimate_clock_offsets(fleet);
    benchmark::DoNotOptimize(offsets.data());
  }
  state.SetItemsProcessed(state.iterations() * 8 * 256);
}
BENCHMARK(BM_EstimateClockOffsets);

void BM_FlightRecordSpan(benchmark::State& state) {
  const std::string path = "/tmp/bcc_collect_bench_" +
                           std::to_string(::getpid()) + ".flight";
  obs::FlightRecorder::Options fo;
  fo.slot_count = 4096;
  auto rec = obs::FlightRecorder::open(path, fo);
  if (rec == nullptr) {
    state.SkipWithError("cannot open flight recorder");
    return;
  }
  const obs::SpanRecord span = bench_span(42, false);
  for (auto _ : state) {
    rec->record_span(span);
  }
  state.SetItemsProcessed(state.iterations());
  rec.reset();
  ::unlink(path.c_str());
}
BENCHMARK(BM_FlightRecordSpan);

// The A/B pair behind the overhead budget: the same enabled gossip span,
// with and without the flight-recorder sink attached. The delta is what
// `--flight-recorder` adds per span on the node's hot path.

void BM_TracedSpan(benchmark::State& state) {
  obs::Tracer tracer;
  tracer.enable(obs::SpanCategory::kGossip);
  for (auto _ : state) {
    obs::Span span(tracer, obs::SpanCategory::kGossip, "gossip_round");
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TracedSpan);

void BM_TracedSpanWithFlightSink(benchmark::State& state) {
  const std::string path = "/tmp/bcc_collect_bench_sink_" +
                           std::to_string(::getpid()) + ".flight";
  obs::FlightRecorder::Options fo;
  fo.slot_count = 4096;
  auto rec = obs::FlightRecorder::open(path, fo);
  if (rec == nullptr) {
    state.SkipWithError("cannot open flight recorder");
    return;
  }
  obs::Tracer tracer;
  tracer.enable(obs::SpanCategory::kGossip);
  obs::FlightRecorder* fr = rec.get();
  tracer.set_sink([fr](const obs::SpanRecord& r) { fr->record_span(r); });
  for (auto _ : state) {
    obs::Span span(tracer, obs::SpanCategory::kGossip, "gossip_round");
    benchmark::DoNotOptimize(&span);
  }
  tracer.clear_sink();
  state.SetItemsProcessed(state.iterations());
  rec.reset();
  ::unlink(path.c_str());
}
BENCHMARK(BM_TracedSpanWithFlightSink);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  bcc::obs::BenchReport report("collect");
  bcc::BenchJsonReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!report.write()) {
    std::fprintf(stderr, "collect_bench: cannot write %s\n",
                 report.path().c_str());
    return 1;
  }
  std::fprintf(stderr, "benchmark telemetry written to %s\n",
               report.path().c_str());
  return 0;
}
