// Shared google-benchmark reporter for the bench/ harnesses: mirrors every
// finished run into an obs::BenchReport while still printing the usual
// console table — `bcc.bench.<run>.real_ns` / `.cpu_ns` gauges plus one
// gauge per user counter. Each harness main() owns a BenchReport and calls
// write() after the run (see obs/bench_report.h for the output contract).
#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "obs/bench_report.h"

namespace bcc {

class BenchJsonReporter : public benchmark::ConsoleReporter {
 public:
  explicit BenchJsonReporter(obs::BenchReport* report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      const double iters =
          run.iterations == 0 ? 1.0 : static_cast<double>(run.iterations);
      const std::string base =
          "bcc.bench." +
          obs::BenchReport::sanitize_segment(run.benchmark_name());
      report_->set(base + ".real_ns",
                   run.real_accumulated_time / iters * 1e9);
      report_->set(base + ".cpu_ns", run.cpu_accumulated_time / iters * 1e9);
      for (const auto& [name, counter] : run.counters) {
        report_->set(base + "." + obs::BenchReport::sanitize_segment(name),
                     counter.value);
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  obs::BenchReport* report_;
};

}  // namespace bcc
