// Algorithmic micro-benchmarks (google-benchmark): the costs behind the
// paper's complexity claims — Algorithm 1's O(n^3), the per-join embedding
// cost, gossip-cycle cost, query processing, and the baselines' inner loops.
//
// Results are also exported machine-readably: the custom main() below runs
// with a reporter that mirrors every run into BENCH_micro.json via
// obs::BenchReport (`bcc.bench.<benchmark>.real_ns` / `.cpu_ns` plus any
// user counters).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>

#include "bench_json_reporter.h"
#include "core/async_overlay.h"
#include "obs/bench_report.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "core/exhaustive_baseline.h"
#include "core/find_cluster.h"
#include "core/partition.h"
#include "data/topology_gen.h"
#include "core/system.h"
#include "serve/query_service.h"
#include "euclid/kdiameter.h"
#include "exp/common.h"
#include "sim/event_engine.h"
#include "metric/four_point.h"
#include "tree/distance_label.h"
#include "tree/embedder.h"
#include "tree/maintenance.h"
#include "vivaldi/vivaldi.h"

namespace {

using namespace bcc;

DistanceMatrix tree_metric_of(std::size_t n, std::uint64_t seed) {
  // Random tree metric via a tiny topology (perfect 4PC).
  Rng rng(seed);
  TopologyOptions options;
  options.hosts = n;
  return generate_topology(options, rng).distances();
}

void BM_FindCluster(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const DistanceMatrix d = tree_metric_of(n, 1);
  std::vector<double> values = d.pair_values();
  std::sort(values.begin(), values.end());
  const double l = values[values.size() / 4];  // harder than median
  const std::size_t k = std::max<std::size_t>(2, n / 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_cluster(d, k, l));
  }
  state.SetComplexityN(static_cast<long long>(n));
}
BENCHMARK(BM_FindCluster)->RangeMultiplier(2)->Range(16, 256)->Complexity();

void BM_MaxClusterSizesForClasses(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const DistanceMatrix d = tree_metric_of(n, 2);
  std::vector<NodeId> universe(n);
  for (NodeId i = 0; i < n; ++i) universe[i] = i;
  std::vector<double> classes;
  for (double b = 5.0; b <= 300.0; b += 5.0) {
    classes.push_back(kDefaultTransformC / b);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(max_cluster_sizes_for_classes(d, universe, classes));
  }
}
BENCHMARK(BM_MaxClusterSizesForClasses)->Arg(32)->Arg(64)->Arg(128);

void BM_BuildFramework(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const DistanceMatrix d = tree_metric_of(n, 3);
  std::uint64_t round = 0;
  for (auto _ : state) {
    Rng rng(1000 + round++);
    benchmark::DoNotOptimize(build_framework(d, rng));
  }
}
BENCHMARK(BM_BuildFramework)->RangeMultiplier(2)->Range(32, 256);

void BM_GossipConvergence(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const DistanceMatrix d = tree_metric_of(n, 4);
  Rng rng(5);
  Framework fw = build_framework(d, rng);
  const DistanceMatrix pred = fw.predicted_distances();
  const BandwidthClasses classes =
      exp::classes_for_grid(exp::bandwidth_grid(15.0, 75.0, 5));
  for (auto _ : state) {
    DecentralizedClusterSystem sys(fw.anchors, pred, classes, {});
    benchmark::DoNotOptimize(sys.run_to_convergence());
  }
}
BENCHMARK(BM_GossipConvergence)->Arg(50)->Arg(100)->Arg(200);

void BM_QueryProcess(benchmark::State& state) {
  const std::size_t n = 150;
  const DistanceMatrix d = tree_metric_of(n, 6);
  Rng rng(7);
  Framework fw = build_framework(d, rng);
  const BandwidthClasses classes =
      exp::classes_for_grid(exp::bandwidth_grid(15.0, 75.0, 5));
  DecentralizedClusterSystem sys(fw.anchors, fw.predicted_distances(), classes,
                                 {});
  sys.run_to_convergence();
  Rng query_rng(8);
  for (auto _ : state) {
    const NodeId start = static_cast<NodeId>(query_rng.below(n));
    benchmark::DoNotOptimize(sys.query(QueryRequest::at_class(start, 8, 2)));
  }
}
BENCHMARK(BM_QueryProcess);

// ---- Serving-layer throughput: single-thread loop vs QueryService batches.
//
// One shared 500-node converged system (built once — it dominates setup
// cost) and one shared mixed request stream. BM_BatchQuerySingleThread is
// the baseline the ISSUE's >= 3x-at-8-threads claim is measured against;
// BM_BatchQueryService/threads:N fans the identical batch over the pool
// with the memo cache off, so the comparison is pure routing work.

struct ServeFixture {
  std::unique_ptr<DecentralizedClusterSystem> sys;
  std::vector<QueryRequest> requests;
};

const ServeFixture& serve_fixture() {
  static const ServeFixture fixture = [] {
    ServeFixture f;
    const std::size_t n = 500;
    const DistanceMatrix d = tree_metric_of(n, 30);
    Rng rng(31);
    Framework fw = build_framework(d, rng);
    const BandwidthClasses classes =
        exp::classes_for_grid(exp::bandwidth_grid(15.0, 75.0, 5));
    f.sys = std::make_unique<DecentralizedClusterSystem>(
        fw.anchors, fw.predicted_distances(), classes, SystemOptions{});
    f.sys->run_to_convergence();
    Rng query_rng(32);
    f.requests.reserve(4096);
    for (std::size_t i = 0; i < 4096; ++i) {
      f.requests.push_back(QueryRequest::at_class(
          static_cast<NodeId>(query_rng.below(n)), 2 + query_rng.below(12),
          query_rng.below(classes.size())));
    }
    return f;
  }();
  return fixture;
}

void BM_BatchQuerySingleThread(benchmark::State& state) {
  const ServeFixture& f = serve_fixture();
  for (auto _ : state) {
    for (const QueryRequest& request : f.requests) {
      benchmark::DoNotOptimize(f.sys->query(request));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.requests.size()));
}
BENCHMARK(BM_BatchQuerySingleThread)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_BatchQueryService(benchmark::State& state) {
  const ServeFixture& f = serve_fixture();
  QueryServiceOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  options.cache_enabled = false;
  QueryService service(*f.sys, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.submit_batch(f.requests));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.requests.size()));
}
BENCHMARK(BM_BatchQueryService)->Unit(benchmark::kMillisecond)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_BatchQueryServiceCached(benchmark::State& state) {
  // With the memo cache on, the second pass over the same request stream is
  // pure sharded-hash-map lookups — the steady state of a skewed workload.
  const ServeFixture& f = serve_fixture();
  QueryServiceOptions options;
  options.threads = static_cast<std::size_t>(state.range(0));
  QueryService service(*f.sys, options);
  service.submit_batch(f.requests);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.submit_batch(f.requests));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(f.requests.size()));
}
BENCHMARK(BM_BatchQueryServiceCached)->Unit(benchmark::kMillisecond)
    ->Arg(8)->UseRealTime();

void BM_VivaldiRound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const DistanceMatrix d = tree_metric_of(n, 9);
  Rng rng(10);
  VivaldiOptions options;
  options.rounds = 1;
  Vivaldi v(n, rng, options);
  for (auto _ : state) {
    v.run(d);  // one round of n * samples updates
  }
}
BENCHMARK(BM_VivaldiRound)->Arg(64)->Arg(256);

void BM_KDiameterEuclidean(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  std::vector<Point2> points(n);
  for (auto& p : points) {
    p.x = rng.uniform(0.0, 100.0);
    p.y = rng.uniform(0.0, 100.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        find_cluster_euclidean(points, std::max<std::size_t>(2, n / 10), 20.0));
  }
}
BENCHMARK(BM_KDiameterEuclidean)->Arg(64)->Arg(128)->Arg(256);

void BM_QuartetEpsilonSampling(benchmark::State& state) {
  const DistanceMatrix d = tree_metric_of(100, 12);
  Rng rng(13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimate_treeness(d, rng, 10000));
  }
}
BENCHMARK(BM_QuartetEpsilonSampling);

void BM_FindClusterWorstCase(benchmark::State& state) {
  // No feasible pair: the full O(n^2) pair scan runs with O(n) work per
  // pair rejected at the distance check — the guaranteed upper bound the
  // paper contrasts with SWORD's exponential search.
  const auto n = static_cast<std::size_t>(state.range(0));
  const DistanceMatrix d = tree_metric_of(n, 20);
  const double l = d.min_distance() * 0.5;  // nothing qualifies
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_cluster(d, 3, l));
  }
  state.SetComplexityN(static_cast<long long>(n));
}
BENCHMARK(BM_FindClusterWorstCase)
    ->RangeMultiplier(2)
    ->Range(16, 256)
    ->Complexity();

void BM_TightestCluster(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const DistanceMatrix d = tree_metric_of(n, 21);
  std::vector<NodeId> universe(n);
  for (NodeId i = 0; i < n; ++i) universe[i] = i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tightest_cluster(d, universe, n / 8));
  }
}
BENCHMARK(BM_TightestCluster)->Arg(64)->Arg(128)->Arg(256);

void BM_ExhaustiveBaseline(benchmark::State& state) {
  const std::size_t n = 150;
  const DistanceMatrix d = tree_metric_of(n, 22);
  std::vector<NodeId> universe(n);
  for (NodeId i = 0; i < n; ++i) universe[i] = i;
  std::vector<double> values = d.pair_values();
  std::sort(values.begin(), values.end());
  const double l = values[values.size() / 2];
  ExhaustiveOptions options;
  options.budget = 100000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        find_cluster_exhaustive(d, universe, 20, l, options));
  }
}
BENCHMARK(BM_ExhaustiveBaseline);

void gossip_under_loss_body(benchmark::State& state, double drop) {
  const std::size_t n = 60;
  const DistanceMatrix d = tree_metric_of(n, 29);
  Rng rng(33);
  Framework fw = build_framework(d, rng);
  const DistanceMatrix pred = fw.predicted_distances();
  const BandwidthClasses classes =
      exp::classes_for_grid(exp::bandwidth_grid(15.0, 75.0, 5));
  const double horizon =
      (6.0 + 20.0 * drop) * static_cast<double>(fw.anchors.diameter() + 2);
  std::uint64_t round = 0;
  std::size_t dropped = 0, retried = 0, rounds = 0;
  for (auto _ : state) {
    FaultPlan plan(500 + round);
    plan.set_default_faults({.drop_prob = drop});
    AsyncOverlayOptions options;
    options.faults = &plan;
    AsyncOverlay async(&fw.anchors, &pred, &classes, options, 600 + round);
    ++round;
    EventEngine engine;
    async.run_for(engine, horizon);
    benchmark::DoNotOptimize(async.last_change());
    dropped += engine.metrics().dropped();
    retried += engine.metrics().retried();
    rounds += async.gossip_rounds();
  }
  const auto iters = static_cast<double>(state.iterations());
  state.counters["dropped"] = static_cast<double>(dropped) / iters;
  state.counters["retried"] = static_cast<double>(retried) / iters;
  state.counters["rounds"] = static_cast<double>(rounds) / iters;
}

void BM_GossipUnderLoss(benchmark::State& state) {
  // Asynchronous gossip to convergence under i.i.d. message loss (drop rate
  // as a percentage in range(0)): what resilience costs — retries and longer
  // horizons — relative to the loss-free run.
  gossip_under_loss_body(state, static_cast<double>(state.range(0)) / 100.0);
}
BENCHMARK(BM_GossipUnderLoss)->Unit(benchmark::kMillisecond)
    ->Arg(0)->Arg(10)->Arg(30);

void BM_GossipUnderLossTraced(benchmark::State& state) {
  // A/B partner of BM_GossipUnderLoss: identical workload with gossip
  // tracing enabled on the global tracer — the per-span cost the telemetry
  // plane adds to the protocol's hot path (EXPERIMENTS.md budgets the whole
  // plane at <2% of gossip throughput).
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.enable(obs::SpanCategory::kGossip);
  gossip_under_loss_body(state, static_cast<double>(state.range(0)) / 100.0);
  tracer.enable(obs::SpanCategory::kGossip, false);
  tracer.clear();
}
BENCHMARK(BM_GossipUnderLossTraced)->Unit(benchmark::kMillisecond)
    ->Arg(10);

void BM_EventEngineThroughput(benchmark::State& state) {
  for (auto _ : state) {
    EventEngine engine;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      engine.schedule_at(0.001 * i, [&fired] { ++fired; });
    }
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_EventEngineThroughput);

void BM_LabelDistance(benchmark::State& state) {
  const DistanceMatrix d = tree_metric_of(150, 23);
  Rng rng(24);
  Framework fw = build_framework(d, rng);
  std::vector<DistanceLabel> labels;
  for (NodeId h = 0; h < 150; ++h) {
    labels.push_back(DistanceLabel::of(fw.prediction, h));
  }
  Rng pair_rng(25);
  for (auto _ : state) {
    const NodeId u = static_cast<NodeId>(pair_rng.below(150));
    NodeId v = static_cast<NodeId>(pair_rng.below(149));
    if (v >= u) ++v;
    benchmark::DoNotOptimize(label_distance(labels[u], labels[v]));
  }
}
BENCHMARK(BM_LabelDistance);

void BM_MaintainerChurnCycle(benchmark::State& state) {
  const std::size_t n = 100;
  const DistanceMatrix d = tree_metric_of(n, 26);
  FrameworkMaintainer maintainer(&d);
  for (NodeId h = 0; h < n; ++h) maintainer.join(h);
  Rng churn(27);
  for (auto _ : state) {
    const auto& alive = maintainer.alive();
    NodeId victim;
    do {
      victim = alive[static_cast<std::size_t>(churn.below(alive.size()))];
    } while (victim == maintainer.anchors().root());
    maintainer.leave(victim);
    maintainer.join(victim);
  }
}
BENCHMARK(BM_MaintainerChurnCycle);

void BM_PartitionPopulation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const DistanceMatrix d = tree_metric_of(n, 28);
  std::vector<NodeId> universe(n);
  for (NodeId i = 0; i < n; ++i) universe[i] = i;
  std::vector<double> values = d.pair_values();
  std::sort(values.begin(), values.end());
  const double l = values[values.size() / 3];
  for (auto _ : state) {
    benchmark::DoNotOptimize(partition_into_clusters(d, universe, l));
  }
}
BENCHMARK(BM_PartitionPopulation)->Arg(64)->Arg(128);

void BM_PredictionTreeDistance(benchmark::State& state) {
  const DistanceMatrix d = tree_metric_of(200, 14);
  Rng rng(15);
  Framework fw = build_framework(d, rng);
  Rng pair_rng(16);
  for (auto _ : state) {
    const NodeId u = static_cast<NodeId>(pair_rng.below(200));
    NodeId v = static_cast<NodeId>(pair_rng.below(199));
    if (v >= u) ++v;
    benchmark::DoNotOptimize(fw.prediction.distance(u, v));
  }
}
BENCHMARK(BM_PredictionTreeDistance);

// ---- Observability overheads: what the instrumentation added everywhere
// above actually costs.

void BM_RegistryHotPath(benchmark::State& state) {
  // One counter add + one histogram record per iteration — the combined
  // per-event cost of the striped counter and the log-bucketed histogram.
  obs::Registry registry;
  obs::Counter& counter = registry.counter("bcc.bench.hot_counter");
  obs::Histogram& histogram = registry.histogram("bcc.bench.hot_histogram");
  std::uint64_t v = 0;
  for (auto _ : state) {
    counter.add(1);
    histogram.record(v++ & 1023);
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_RegistryHotPath);

void BM_SpanOnOff(benchmark::State& state) {
  // range(0) == 0: category disabled — the cost every instrumented hot path
  // pays in production (one relaxed load + branch). range(0) == 1: enabled —
  // the diagnostic-mode cost (two clock reads + a mutexed ring push).
  obs::Tracer tracer;
  tracer.enable(obs::SpanCategory::kBench, state.range(0) != 0);
  for (auto _ : state) {
    obs::Span span(tracer, obs::SpanCategory::kBench, "bench_span");
    benchmark::DoNotOptimize(span.active());
  }
}
BENCHMARK(BM_SpanOnOff)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  bcc::obs::BenchReport report("micro");
  bcc::BenchJsonReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!report.write()) {
    std::fprintf(stderr, "micro_bench: cannot write %s\n",
                 report.path().c_str());
    return 1;
  }
  std::fprintf(stderr, "benchmark telemetry written to %s\n",
               report.path().c_str());
  return 0;
}
