// Ablation A5: dynamic clustering under churn — §I's fifth requirement
// ("members of each cluster should adaptively change as network condition
// changes"). Hosts continuously leave and rejoin; after each epoch the
// overlay is re-aggregated and queried. Reported per churn rate: the repair
// cost (forced rejoins per departure), the prediction accuracy over the
// surviving membership, and decentralized query quality — all of which
// should stay flat as churn proceeds.
//
//   ./ablation_churn --size 120 --epochs 10
#include <cstdio>

#include "common/options.h"
#include "common/table.h"
#include "obs/bench_report.h"
#include "core/system.h"
#include "data/planetlab_synth.h"
#include "exp/common.h"
#include "stats/accuracy.h"
#include "stats/summary.h"
#include "tree/maintenance.h"

namespace {

using namespace bcc;

/// Median relative bandwidth error over the alive membership.
double alive_median_error(const FrameworkMaintainer& m,
                          const BandwidthMatrix& real, double c) {
  const auto view = m.compact_view();
  std::vector<double> errs;
  for (std::size_t i = 0; i < view.ids.size(); ++i) {
    for (std::size_t j = i + 1; j < view.ids.size(); ++j) {
      const double bw = real.at(view.ids[i], view.ids[j]);
      const double bw_pred = distance_to_bandwidth(view.predicted.at(i, j), c);
      errs.push_back(std::abs(bw - bw_pred) / bw);
    }
  }
  return errs.empty() ? 0.0 : median(errs);
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("ablation_churn", "dynamic membership: repair cost + accuracy");
  auto& size = opts.add_int("size", 120, "total host population");
  auto& epochs = opts.add_int("epochs", 10, "churn epochs per rate");
  auto& queries = opts.add_int("queries", 100, "queries after each epoch");
  auto& noise = opts.add_double("noise", 0.25, "dataset noise sigma");
  auto& seed = opts.add_int("seed", 42, "experiment seed");
  auto& csv = opts.add_bool("csv", false, "emit CSV instead of tables");
  opts.parse(argc, argv);
  obs::BenchReport report("ablation_churn");

  Rng data_rng(static_cast<std::uint64_t>(seed));
  SynthOptions data_options;
  data_options.hosts = static_cast<std::size_t>(size);
  data_options.noise_sigma = noise;
  const SynthDataset data = synthesize_planetlab(data_options, data_rng);
  const std::size_t n = data.bandwidth.size();
  const std::size_t k = std::max<std::size_t>(2, n / 15);
  const std::vector<double> b_grid = exp::bandwidth_grid(15.0, 75.0, 5);
  const BandwidthClasses classes = exp::classes_for_grid(b_grid, data.c);

  std::printf("== Ablation A5: churn (n=%zu, k=%zu, %lld epochs/rate) ==\n", n,
              k, static_cast<long long>(epochs));
  TablePrinter table({"churn_rate", "rejoins/leave", "median_rel_err",
                      "RR", "WPR", "conv_cycles/epoch"});

  for (double rate : {0.05, 0.10, 0.20}) {
    FrameworkMaintainer maintainer(&data.distances);
    Rng order(static_cast<std::uint64_t>(seed) + 1);
    std::vector<NodeId> all(n);
    for (NodeId i = 0; i < n; ++i) all[i] = i;
    order.shuffle(all);
    for (NodeId h : all) maintainer.join(h);

    Rng churn(static_cast<std::uint64_t>(seed) + 2);
    RrAccumulator rr;
    WprAccumulator wpr;
    std::size_t departures = 0;
    double err_sum = 0.0, cycles_sum = 0.0;
    const auto per_epoch =
        std::max<std::size_t>(1, static_cast<std::size_t>(rate * n));

    for (std::int64_t epoch = 0; epoch < epochs; ++epoch) {
      // Departures followed by fresh arrivals (population stays near n).
      for (std::size_t i = 0; i < per_epoch; ++i) {
        const auto& alive = maintainer.alive();
        if (alive.size() <= 4) break;
        maintainer.leave(
            alive[static_cast<std::size_t>(churn.below(alive.size()))]);
        ++departures;
      }
      for (NodeId h = 0; h < n; ++h) {
        if (!maintainer.contains(h)) maintainer.join(h);
      }

      // Re-aggregate the overlay on the repaired framework and query it.
      const auto view = maintainer.compact_view();
      DecentralizedClusterSystem sys(view.anchors, view.predicted, classes,
                                     {});
      cycles_sum += static_cast<double>(sys.run_to_convergence());
      err_sum += alive_median_error(maintainer, data.bandwidth, data.c);
      Rng qrng = churn.split(static_cast<std::uint64_t>(epoch));
      for (std::int64_t q = 0; q < queries; ++q) {
        const double b =
            b_grid[static_cast<std::size_t>(qrng.below(b_grid.size()))];
        const auto cls = classes.class_for_bandwidth(b);
        const NodeId start = static_cast<NodeId>(qrng.below(view.ids.size()));
        const QueryResult r = sys.query(QueryRequest::at_class(start, k, *cls));
        rr.add_query(r.found());
        if (r.found()) {
          // Map compact ids back to global hosts for the real-BW check.
          Cluster global;
          for (NodeId pos : r.cluster) global.push_back(view.ids[pos]);
          wpr.add_cluster(data.bandwidth, global, b);
        }
      }
    }
    table.add_numeric_row(
        {rate,
         departures ? static_cast<double>(maintainer.rejoins()) /
                          static_cast<double>(departures)
                    : 0.0,
         err_sum / static_cast<double>(epochs), rr.rate(), wpr.rate(),
         cycles_sum / static_cast<double>(epochs)});
  }
  std::fputs(csv ? table.to_csv().c_str() : table.to_string().c_str(), stdout);
  obs::export_table(report, "main", table);
  report.write();
  return 0;
}
