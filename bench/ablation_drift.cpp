// Ablation A7: network drift — the paper's dynamic-clustering requirement
// exercised end to end with time-varying bandwidth. The network evolves
// (mean-reverting drift + congestion episodes); a *stale* system keeps the
// epoch-0 framework while a *refreshed* system re-embeds and re-aggregates
// each epoch. Query quality against the *current* ground truth should stay
// flat when refreshed and decay when stale.
//
//   ./ablation_drift --epochs 12
#include <cstdio>

#include "common/options.h"
#include "common/table.h"
#include "obs/bench_report.h"
#include "core/system.h"
#include "data/dynamics.h"
#include "exp/common.h"
#include "stats/accuracy.h"
#include "tree/embedder.h"

int main(int argc, char** argv) {
  using namespace bcc;
  Options opts("ablation_drift", "stale vs refreshed clustering under drift");
  auto& size = opts.add_int("size", 120, "dataset size");
  auto& epochs = opts.add_int("epochs", 24, "drift epochs");
  auto& queries = opts.add_int("queries", 120, "queries per epoch per system");
  auto& sigma = opts.add_double("sigma", 0.05, "per-epoch transient noise sigma");
  auto& rho = opts.add_double("rho", 0.6, "transient-noise persistence");
  auto& shift_rate = opts.add_double("shift_rate", 0.12,
                                     "structural per-host shift rate/epoch");
  auto& seed = opts.add_int("seed", 42, "experiment seed");
  auto& csv = opts.add_bool("csv", false, "emit CSV instead of tables");
  opts.parse(argc, argv);
  obs::BenchReport report("ablation_drift");

  Rng data_rng(static_cast<std::uint64_t>(seed));
  SynthOptions data_options;
  data_options.hosts = static_cast<std::size_t>(size);
  const SynthDataset data = synthesize_planetlab(data_options, data_rng);
  const std::size_t n = data.bandwidth.size();
  const std::size_t k = std::max<std::size_t>(2, n / 15);
  const std::vector<double> b_grid = exp::bandwidth_grid(15.0, 75.0, 5);
  const BandwidthClasses classes = exp::classes_for_grid(b_grid, data.c);

  DynamicsOptions dyn_options;
  dyn_options.sigma = sigma;
  dyn_options.rho = rho;
  dyn_options.congestion_rate = 0.4;
  dyn_options.congestion_epochs = 4;
  dyn_options.baseline_shift_rate = shift_rate;  // structural link changes
  dyn_options.baseline_shift_sigma = 0.5;
  BandwidthDynamics dynamics(data, dyn_options,
                             static_cast<std::uint64_t>(seed) + 1);

  // Epoch-0 framework, shared starting point.
  // Paper-magnitude cluster selection ("any" feasible cluster) so quality
  // differences are visible; the tightest-first default hides small errors.
  SystemOptions sys_options;
  sys_options.find_options.order =
      FindClusterOptions::PairOrder::kIndexOrder;

  Rng fw_rng(static_cast<std::uint64_t>(seed) + 2);
  const Framework initial = build_framework(data.distances, fw_rng);
  DecentralizedClusterSystem stale(initial.anchors,
                                   initial.predicted_distances(), classes,
                                   sys_options);
  stale.run_to_convergence();

  std::printf("== Ablation A7: drift (n=%zu, k=%zu, sigma=%.2f, congestion "
              "episodes on) ==\n",
              n, k, static_cast<double>(sigma));
  TablePrinter table({"epoch", "stale WPR", "refreshed WPR", "stale RR",
                      "refreshed RR", "congested_hosts"});

  Rng qrng(static_cast<std::uint64_t>(seed) + 3);
  for (std::int64_t epoch = 1; epoch <= epochs; ++epoch) {
    const BandwidthMatrix& now = dynamics.step();
    const DistanceMatrix now_distances = rational_transform(now, data.c);

    // Refreshed: re-embed on the current measurements, re-aggregate.
    Rng refresh_rng = fw_rng.split(static_cast<std::uint64_t>(epoch));
    const Framework fresh = build_framework(now_distances, refresh_rng);
    DecentralizedClusterSystem refreshed(fresh.anchors,
                                         fresh.predicted_distances(), classes,
                                         sys_options);
    refreshed.run_to_convergence();

    WprAccumulator wpr_stale, wpr_fresh;
    RrAccumulator rr_stale, rr_fresh;
    for (std::int64_t q = 0; q < queries; ++q) {
      const double b =
          b_grid[static_cast<std::size_t>(qrng.below(b_grid.size()))];
      const auto cls = classes.class_for_bandwidth(b);
      const NodeId start = static_cast<NodeId>(qrng.below(n));
      const QueryResult a = stale.query(QueryRequest::at_class(start, k, *cls));
      rr_stale.add_query(a.found());
      if (a.found()) wpr_stale.add_cluster(now, a.cluster, b);
      const QueryResult r =
          refreshed.query(QueryRequest::at_class(start, k, *cls));
      rr_fresh.add_query(r.found());
      if (r.found()) wpr_fresh.add_cluster(now, r.cluster, b);
    }
    table.add_numeric_row({static_cast<double>(epoch), wpr_stale.rate(),
                           wpr_fresh.rate(), rr_stale.rate(), rr_fresh.rate(),
                           static_cast<double>(dynamics.congested().size())});
  }
  std::fputs(csv ? table.to_csv().c_str() : table.to_string().c_str(), stdout);
  obs::export_table(report, "main", table);
  report.write();
  return 0;
}
