// Reproduces Fig. 3 (paper §IV.A): clustering accuracy (WPR vs b) for
// TREE-DECENTRAL / TREE-CENTRAL / EUCL-CENTRAL on both datasets, plus the
// CDFs of relative bandwidth-prediction error (tree vs Euclidean embedding).
//
//   ./fig3_accuracy                 # both datasets, paper-style workload
//   ./fig3_accuracy --dataset hp --rounds 10 --csv
#include <cstdio>

#include "common/options.h"
#include "common/table.h"
#include "obs/bench_report.h"
#include "exp/fig3.h"

namespace {

using namespace bcc;

void print_result(const std::string& tag, const exp::Fig3Result& r, bool csv,
                  obs::BenchReport& report) {
  std::printf("== Fig. 3: WPR vs b (%s) — k fixed, 3 approaches ==\n",
              tag.c_str());
  TablePrinter wpr({"b_mbps", tag + "-TREE-DECENTRAL", tag + "-TREE-CENTRAL",
                    tag + "-EUCL-CENTRAL", "RR-DECENTRAL"});
  for (const auto& row : r.rows) {
    wpr.add_numeric_row({row.b, row.wpr_tree_decentral, row.wpr_tree_central,
                 row.wpr_eucl_central, row.rr_tree_decentral});
  }
  std::fputs(csv ? wpr.to_csv().c_str() : wpr.to_string().c_str(), stdout);
  obs::export_table(report, tag + "_wpr", wpr);

  std::printf("\n== Fig. 3: CDF of relative bandwidth prediction error (%s) ==\n",
              tag.c_str());
  std::printf("median relative error: %s-TREE %.4f | %s-EUCL %.4f\n",
              tag.c_str(), r.tree_median_error, tag.c_str(),
              r.eucl_median_error);
  TablePrinter cdf({"rel_error", tag + "-TREE cdf", tag + "-EUCL cdf"});
  // Print on a common error grid for readability.
  const std::vector<double> err_grid = {0.05, 0.1, 0.2, 0.3, 0.5,
                                        0.75, 1.0, 1.5, 2.0};
  auto cdf_value = [](const std::vector<CdfPoint>& points, double x) {
    double y = 0.0;
    for (const auto& p : points) {
      if (p.x <= x) {
        y = p.y;
      } else {
        break;
      }
    }
    return y;
  };
  for (double e : err_grid) {
    cdf.add_numeric_row({e, cdf_value(r.tree_error_cdf, e),
                 cdf_value(r.eucl_error_cdf, e)});
  }
  std::fputs(csv ? cdf.to_csv().c_str() : cdf.to_string().c_str(), stdout);
  obs::export_table(report, tag + "_cdf", cdf);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("fig3_accuracy",
               "Fig. 3: clustering accuracy, tree vs Euclidean metric space");
  auto& dataset = opts.add_string("dataset", "both", "hp | umd | both");
  auto& rounds = opts.add_int("rounds", 10, "frameworks per dataset (paper: 10)");
  auto& queries = opts.add_int("queries_per_b", 20,
                               "decentralized queries per b per round");
  auto& n_cut = opts.add_int("n_cut", 10, "aggregate size limit");
  auto& noise = opts.add_double("noise", 0.25, "dataset synthesis noise sigma");
  auto& seed = opts.add_int("seed", 42, "experiment seed");
  auto& csv = opts.add_bool("csv", false, "emit CSV instead of tables");
  opts.parse(argc, argv);
  obs::BenchReport report("fig3_accuracy");

  if (dataset == "hp" || dataset == "both") {
    bcc::Rng rng(static_cast<std::uint64_t>(seed));
    const bcc::SynthDataset hp = bcc::make_hp_planetlab(rng, noise);
    bcc::exp::Fig3Params params;  // HP workload: k=10, b=15..75 (paper)
    params.rounds = static_cast<std::size_t>(rounds);
    params.queries_per_b = static_cast<std::size_t>(queries);
    params.n_cut = static_cast<std::size_t>(n_cut);
    params.k = 10;
    params.b_min = 15.0;
    params.b_max = 75.0;
    print_result("HP", bcc::exp::run_fig3(hp, params,
                                          static_cast<std::uint64_t>(seed)),
                 csv, report);
  }
  if (dataset == "umd" || dataset == "both") {
    bcc::Rng rng(static_cast<std::uint64_t>(seed) + 1);
    const bcc::SynthDataset umd = bcc::make_umd_planetlab(rng, noise);
    bcc::exp::Fig3Params params;  // UMD workload: k=16, b=30..110 (paper)
    params.rounds = static_cast<std::size_t>(rounds);
    params.queries_per_b = static_cast<std::size_t>(queries);
    params.n_cut = static_cast<std::size_t>(n_cut);
    params.k = 16;
    params.b_min = 30.0;
    params.b_max = 110.0;
    print_result("UMD", bcc::exp::run_fig3(umd, params,
                                           static_cast<std::uint64_t>(seed)),
                 csv, report);
  }
  report.write();
  return 0;
}
