// Transport benchmarks (google-benchmark): frame codec costs and the real
// TcpTransport loopback paths — one-frame round-trip latency and bulk
// delivery throughput. Results mirror into BENCH_net.json via
// obs::BenchReport; tools/bench_smoke.sh diffs the codec + throughput
// subset against the committed bench/BENCH_net.json baseline (cpu_ns only —
// the round-trip bench spends its wall time in poll(2) and is full-run
// only).
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_json_reporter.h"
#include "net/frame.h"
#include "net/tcp_transport.h"
#include "obs/bench_report.h"

namespace {

using namespace bcc;

obs::TraceContext bench_trace() { return {0xabcdef01u, 0x12345678u, 3u}; }

net::ExchangePayload bench_payload() {
  net::ExchangePayload p;
  p.exchange = 7;
  p.prop_node.resize(24);
  p.prop_crt.resize(8);
  for (std::size_t i = 0; i < p.prop_node.size(); ++i) p.prop_node[i] = i;
  for (std::size_t i = 0; i < p.prop_crt.size(); ++i) p.prop_crt[i] = i * 3;
  return p;
}

void BM_FrameEncode(benchmark::State& state) {
  const net::ExchangePayload payload = bench_payload();
  std::vector<std::uint8_t> out;
  for (auto _ : state) {
    out.clear();
    const std::vector<std::uint8_t> body = net::encode_exchange(payload);
    net::append_frame(out, net::FrameType::kExchange, 3, 9, bench_trace(),
                      body.data(), body.size());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrameEncode);

void BM_FrameDecode(benchmark::State& state) {
  const std::vector<std::uint8_t> wire =
      net::encode_frame(net::FrameType::kExchange, 3, 9, bench_trace(),
                        net::encode_exchange(bench_payload()));
  for (auto _ : state) {
    net::DecodeResult r = net::decode_frame(wire.data(), wire.size());
    net::ExchangePayload p;
    net::decode_exchange(r.frame.body.data(), r.frame.body.size(), p);
    benchmark::DoNotOptimize(p.prop_node.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrameDecode);

/// Two live TcpTransports on loopback ports (pid-derived, re-rolled on
/// collision) pumped from this thread — the ProcessNode single-threaded
/// contract, minus the overlay.
struct LoopbackPair {
  std::unique_ptr<net::TcpTransport> a, b;

  static net::TcpTransportOptions options(NodeId local,
                                          std::uint16_t base_port) {
    net::TcpTransportOptions o;
    o.local = local;
    o.peers.resize(2);
    o.peers[0].port = base_port;
    o.peers[1].port = static_cast<std::uint16_t>(base_port + 1);
    o.heartbeat_period = 0.5;
    o.heartbeat_timeout = 2.0;
    o.seed = 29 + local;
    return o;
  }

  static LoopbackPair make() {
    LoopbackPair pair;
    for (std::uint32_t attempt = 0; attempt < 20; ++attempt) {
      const std::uint32_t mix = static_cast<std::uint32_t>(::getpid()) * 131u +
                                attempt * 977u + 40961u;
      const auto base = static_cast<std::uint16_t>(21000u + mix % 40000u);
      pair.a = std::make_unique<net::TcpTransport>(options(0, base));
      pair.b = std::make_unique<net::TcpTransport>(options(1, base));
      if (pair.a->listen() && pair.b->listen()) return pair;
    }
    std::fprintf(stderr, "net_bench: no free port pair\n");
    std::exit(1);
  }
};

void BM_TcpRoundTrip(benchmark::State& state) {
  LoopbackPair pair = LoopbackPair::make();
  std::size_t a_received = 0;
  pair.a->set_handler([&](const net::Delivery&) { ++a_received; });
  pair.b->set_handler([&](const net::Delivery& d) {
    pair.b->send(1, 0, net::FrameType::kAck, d.body, d.trace);
  });
  const std::vector<std::uint8_t> body = net::encode_u64(1);
  for (auto _ : state) {
    const std::size_t want = a_received + 1;
    pair.a->send(0, 1, net::FrameType::kAck, body, {});
    while (a_received < want) {
      pair.a->poll_once(0.0);
      pair.b->poll_once(0.0);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TcpRoundTrip)->UseRealTime();

void BM_TransportThroughput(benchmark::State& state) {
  LoopbackPair pair = LoopbackPair::make();
  std::size_t delivered = 0;
  pair.a->set_handler([](const net::Delivery&) {});
  pair.b->set_handler([&](const net::Delivery&) { ++delivered; });
  const std::vector<std::uint8_t> body =
      net::encode_exchange(bench_payload());
  constexpr std::size_t kBatch = 64;
  for (auto _ : state) {
    const std::size_t want = delivered + kBatch;
    for (std::size_t i = 0; i < kBatch; ++i) {
      pair.a->send(0, 1, net::FrameType::kExchange, body, {});
      pair.a->poll_once(0.0);
    }
    while (delivered < want) {
      pair.a->poll_once(0.0);
      pair.b->poll_once(0.0);
    }
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kBatch));
  state.counters["frame_bytes"] =
      static_cast<double>(net::frame_wire_bytes(body.size()));
}
BENCHMARK(BM_TransportThroughput)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  bcc::obs::BenchReport report("net");
  bcc::BenchJsonReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!report.write()) {
    std::fprintf(stderr, "net_bench: cannot write %s\n",
                 report.path().c_str());
    return 1;
  }
  std::fprintf(stderr, "benchmark telemetry written to %s\n",
               report.path().c_str());
  return 0;
}
