// Reproduces Fig. 6 (paper §IV.D): scalable query routing — the average
// number of Algorithm 4 routing hops vs system size n. The paper reports
// ~2–3 hops with slow concave growth over n = 50..300.
//
//   ./fig6_scalability
//   ./fig6_scalability --datasets_per_size 10 --queries 1000   # paper scale
#include <cstdio>

#include "common/options.h"
#include "common/table.h"
#include "obs/bench_report.h"
#include "exp/fig6.h"

int main(int argc, char** argv) {
  using namespace bcc;
  Options opts("fig6_scalability", "Fig. 6: query routing hops vs system size");
  auto& datasets = opts.add_int("datasets_per_size", 5,
                                "random subsets per n (paper: 10)");
  auto& rounds = opts.add_int("rounds", 2, "frameworks per subset");
  auto& queries = opts.add_int("queries", 100,
                               "queries per framework (paper: 1000)");
  auto& n_cut = opts.add_int("n_cut", 10, "aggregate size limit");
  auto& n_max = opts.add_int("n_max", 300, "largest system size");
  auto& noise = opts.add_double("noise", 0.25, "dataset synthesis noise sigma");
  auto& seed = opts.add_int("seed", 42, "experiment seed");
  auto& csv = opts.add_bool("csv", false, "emit CSV instead of tables");
  opts.parse(argc, argv);
  obs::BenchReport report("fig6_scalability");

  // Base trace: the UMD-like dataset (317 nodes), as in the paper.
  Rng rng(static_cast<std::uint64_t>(seed));
  const SynthDataset umd = make_umd_planetlab(rng, noise);

  exp::Fig6Params params;
  params.datasets_per_size = static_cast<std::size_t>(datasets);
  params.rounds = static_cast<std::size_t>(rounds);
  params.queries = static_cast<std::size_t>(queries);
  params.n_cut = static_cast<std::size_t>(n_cut);
  params.sizes.clear();
  for (std::size_t n = 50; n <= static_cast<std::size_t>(n_max); n += 50) {
    params.sizes.push_back(n);
  }

  const exp::Fig6Result r =
      exp::run_fig6(umd, params, static_cast<std::uint64_t>(seed));

  std::printf("== Fig. 6: average query routing hops vs system size "
              "(UMD-PlanetLab subsets, k = 0.05n..0.30n) ==\n");
  TablePrinter table({"n", "avg_hops", "ci95_lo", "ci95_hi", "avg_hops_found", "max_hops", "RR"});
  for (const auto& row : r.rows) {
    table.add_numeric_row({static_cast<double>(row.n), row.avg_hops,
                           row.hops_ci_lo, row.hops_ci_hi,
                           row.avg_hops_found, row.max_hops, row.rr});
  }
  std::fputs(csv ? table.to_csv().c_str() : table.to_string().c_str(), stdout);
  obs::export_table(report, "main", table);
  report.write();
  return 0;
}
