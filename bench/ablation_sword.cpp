// Ablation A6: the SWORD contrast (§V) — "SWORD basically relies on an
// exhaustive search taking an exponential time, and stops searching when
// timeout expires. On the other hand, our approach guarantees to answer a
// query in a polynomial time under the assumption of tree metric space."
//
// Both answer the same (k, b) queries on one dataset:
//   * SWORD-style: budgeted branch-and-bound k-clique over the *raw*
//     measured bandwidth graph (several budgets),
//   * bcc: Algorithm 1 over the prediction framework's tree metric.
// Reported per k: answer rate (definitive yes/no within budget), give-up
// rate, and mean search expansions — versus Algorithm 1's fixed O(n^3).
//
//   ./ablation_sword --size 150
#include <cstdio>

#include "common/options.h"
#include "common/table.h"
#include "obs/bench_report.h"
#include "core/exhaustive_baseline.h"
#include "core/find_cluster.h"
#include "data/planetlab_synth.h"
#include "exp/common.h"
#include "tree/embedder.h"

int main(int argc, char** argv) {
  using namespace bcc;
  Options opts("ablation_sword",
               "budgeted exhaustive search vs Algorithm 1 on a tree metric");
  auto& size = opts.add_int("size", 150, "dataset size");
  auto& queries = opts.add_int("queries", 40, "queries per k");
  auto& noise = opts.add_double("noise", 0.25, "dataset noise sigma");
  auto& seed = opts.add_int("seed", 42, "experiment seed");
  auto& csv = opts.add_bool("csv", false, "emit CSV instead of tables");
  opts.parse(argc, argv);
  obs::BenchReport report("ablation_sword");

  Rng data_rng(static_cast<std::uint64_t>(seed));
  SynthOptions data_options;
  data_options.hosts = static_cast<std::size_t>(size);
  data_options.noise_sigma = noise;
  const SynthDataset data = synthesize_planetlab(data_options, data_rng);
  const std::size_t n = data.bandwidth.size();

  Rng fw_rng(static_cast<std::uint64_t>(seed) + 1);
  const Framework fw = build_framework(data.distances, fw_rng);
  const DistanceMatrix pred = fw.predicted_distances();

  std::vector<NodeId> universe(n);
  for (NodeId i = 0; i < n; ++i) universe[i] = i;
  const std::vector<double> b_grid = exp::bandwidth_grid(15.0, 75.0, 5);

  std::printf("== Ablation A6: SWORD-style budgeted search vs Algorithm 1 "
              "(n=%zu) ==\n",
              n);
  TablePrinter table({"k", "sword@1e3 answered", "sword@1e3 gave_up",
                      "sword@1e5 answered", "sword@1e5 gave_up",
                      "sword mean expansions", "alg1 found"});

  Rng qrng(static_cast<std::uint64_t>(seed) + 2);
  for (std::size_t k : {5ul, 10ul, 20ul, 40ul, 60ul}) {
    std::size_t answered_small = 0, gaveup_small = 0;
    std::size_t answered_big = 0, gaveup_big = 0;
    std::size_t alg1_found = 0;
    double expansions = 0.0;
    for (std::int64_t q = 0; q < queries; ++q) {
      const double b =
          b_grid[static_cast<std::size_t>(qrng.below(b_grid.size()))];
      const double l = bandwidth_to_distance(b, data.c);

      ExhaustiveOptions small_budget;
      small_budget.budget = 1000;
      const auto small =
          find_cluster_exhaustive(data.distances, universe, k, l, small_budget);
      if (small.exhausted_budget) {
        ++gaveup_small;
      } else {
        ++answered_small;
      }
      ExhaustiveOptions big_budget;
      big_budget.budget = 100000;
      const auto big =
          find_cluster_exhaustive(data.distances, universe, k, l, big_budget);
      if (big.exhausted_budget) {
        ++gaveup_big;
      } else {
        ++answered_big;
      }
      expansions += static_cast<double>(big.expansions);

      if (find_cluster(pred, universe, k, l)) ++alg1_found;
    }
    const double total = static_cast<double>(queries);
    table.add_numeric_row({static_cast<double>(k),
                           static_cast<double>(answered_small) / total,
                           static_cast<double>(gaveup_small) / total,
                           static_cast<double>(answered_big) / total,
                           static_cast<double>(gaveup_big) / total,
                           expansions / total,
                           static_cast<double>(alg1_found) / total});
  }
  std::fputs(csv ? table.to_csv().c_str() : table.to_string().c_str(), stdout);
  obs::export_table(report, "main", table);
  std::printf("\n(Algorithm 1 always answers: its cost is a fixed O(n^3) "
              "pass, never a give-up.)\n");
  report.write();
  return 0;
}
