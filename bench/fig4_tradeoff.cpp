// Reproduces Fig. 4 (paper §IV.B): Return Rate vs k — the tradeoff of
// decentralization. Centralized clustering sees the full predicted metric;
// decentralized nodes only see n_cut-bounded clustering spaces, so RR drops
// earlier for large k.
//
//   ./fig4_tradeoff                    # both datasets
//   ./fig4_tradeoff --dataset hp --rounds 20
#include <cstdio>

#include "common/options.h"
#include "common/table.h"
#include "obs/bench_report.h"
#include "exp/fig4.h"

namespace {

using namespace bcc;

void print_result(const std::string& tag, const exp::Fig4Result& r, bool csv,
                  obs::BenchReport& report) {
  std::printf("== Fig. 4: Return Rate vs k (%s), n_cut-limited overlay ==\n",
              tag.c_str());
  TablePrinter table(
      {"k", tag + "-TREE-CENTRAL RR", tag + "-TREE-DECENTRAL RR"});
  for (const auto& row : r.rows) {
    table.add_numeric_row({static_cast<double>(row.k), row.rr_central,
                   row.rr_decentral});
  }
  std::fputs(csv ? table.to_csv().c_str() : table.to_string().c_str(), stdout);
  obs::export_table(report, tag + "_rr", table);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("fig4_tradeoff",
               "Fig. 4: return rate vs k, centralized vs decentralized");
  auto& dataset = opts.add_string("dataset", "both", "hp | umd | both");
  auto& rounds = opts.add_int("rounds", 15,
                              "frameworks per dataset (paper: 100)");
  auto& queries = opts.add_int("queries_per_k", 8, "query samples per k");
  auto& n_cut = opts.add_int("n_cut", 10, "aggregate size limit (paper: 10)");
  auto& k_steps = opts.add_int("k_steps", 10, "points on the k axis");
  auto& noise = opts.add_double("noise", 0.25, "dataset synthesis noise sigma");
  auto& seed = opts.add_int("seed", 42, "experiment seed");
  auto& csv = opts.add_bool("csv", false, "emit CSV instead of tables");
  opts.parse(argc, argv);
  obs::BenchReport report("fig4_tradeoff");

  if (dataset == "hp" || dataset == "both") {
    bcc::Rng rng(static_cast<std::uint64_t>(seed));
    const bcc::SynthDataset hp = bcc::make_hp_planetlab(rng, noise);
    bcc::exp::Fig4Params params;  // HP workload: k=2..90, b=15..75 (paper)
    params.rounds = static_cast<std::size_t>(rounds);
    params.queries_per_k = static_cast<std::size_t>(queries);
    params.n_cut = static_cast<std::size_t>(n_cut);
    params.k_steps = static_cast<std::size_t>(k_steps);
    params.k_min = 2;
    params.k_max = 90;
    params.b_min = 15.0;
    params.b_max = 75.0;
    print_result("HP", bcc::exp::run_fig4(hp, params,
                                          static_cast<std::uint64_t>(seed)),
                 csv, report);
  }
  if (dataset == "umd" || dataset == "both") {
    bcc::Rng rng(static_cast<std::uint64_t>(seed) + 1);
    const bcc::SynthDataset umd = bcc::make_umd_planetlab(rng, noise);
    bcc::exp::Fig4Params params;  // UMD workload: k=2..150, b=30..110 (paper)
    params.rounds = static_cast<std::size_t>(rounds);
    params.queries_per_k = static_cast<std::size_t>(queries);
    params.n_cut = static_cast<std::size_t>(n_cut);
    params.k_steps = static_cast<std::size_t>(k_steps);
    params.k_min = 2;
    params.k_max = 150;
    params.b_min = 30.0;
    params.b_max = 110.0;
    print_result("UMD", bcc::exp::run_fig4(umd, params,
                                           static_cast<std::uint64_t>(seed)),
                 csv, report);
  }
  report.write();
  return 0;
}
