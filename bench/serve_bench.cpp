// Serving-plane benchmarks (google-benchmark): the costs of the sharded
// query plane — epoch-protected snapshot reads, per-shard cache lookups,
// the load-shedding path, and the ISSUE's overload acceptance scenario
// (offered load >= 4x capacity; admitted-query p99 vs the uncontended p99).
//
// Results are exported machine-readably like micro_bench: the main() below
// mirrors every run into BENCH_serve.json via obs::BenchReport, and
// tools/bench_smoke.sh diffs the fast subset against the committed
// bench/BENCH_serve.json baseline.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_json_reporter.h"
#include "core/system.h"
#include "data/topology_gen.h"
#include "exp/common.h"
#include "obs/bench_report.h"
#include "serve/epoch.h"
#include "serve/query_service.h"
#include "tree/embedder.h"

namespace {

using namespace bcc;

DistanceMatrix tree_metric_of(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  TopologyOptions options;
  options.hosts = n;
  return generate_topology(options, rng).distances();
}

// One shared 200-node converged system plus a mixed 4096-request stream
// (built lazily — only benches that serve queries pay for it).
struct ServeFixture {
  std::unique_ptr<DecentralizedClusterSystem> sys;
  std::vector<QueryRequest> requests;
};

const ServeFixture& serve_fixture() {
  static const ServeFixture fixture = [] {
    ServeFixture f;
    const std::size_t n = 200;
    const DistanceMatrix d = tree_metric_of(n, 40);
    Rng rng(41);
    Framework fw = build_framework(d, rng);
    const BandwidthClasses classes =
        exp::classes_for_grid(exp::bandwidth_grid(15.0, 75.0, 5));
    f.sys = std::make_unique<DecentralizedClusterSystem>(
        fw.anchors, fw.predicted_distances(), classes, SystemOptions{});
    f.sys->run_to_convergence();
    Rng query_rng(42);
    f.requests.reserve(4096);
    for (std::size_t i = 0; i < 4096; ++i) {
      f.requests.push_back(QueryRequest::at_class(
          static_cast<NodeId>(query_rng.below(n)), 2 + query_rng.below(12),
          query_rng.below(classes.size())));
    }
    return f;
  }();
  return fixture;
}

double p99_of(std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t idx =
      std::min(samples.size() - 1, (samples.size() * 99) / 100);
  return samples[idx];
}

void BM_EpochPin(benchmark::State& state) {
  // The per-query snapshot access cost: one pin (CAS + verify load), one
  // pointer load, one unpin — what replaced the PR-1 mutex + refcount bump.
  EpochPtr<std::uint64_t> ptr(std::make_shared<const std::uint64_t>(42));
  for (auto _ : state) {
    EpochPtr<std::uint64_t>::ReadGuard guard = ptr.read();
    benchmark::DoNotOptimize(*guard);
  }
}
BENCHMARK(BM_EpochPin);

void BM_EpochPublish(benchmark::State& state) {
  // Writer-side swap with no pinned readers: release-store + epoch advance
  // + immediate limbo reclamation. Rare in production (once per gossip
  // restructuring) but bounds how often refresh() can run.
  EpochPtr<std::uint64_t> ptr(std::make_shared<const std::uint64_t>(0));
  std::uint64_t v = 1;
  for (auto _ : state) {
    ptr.publish(std::make_shared<const std::uint64_t>(v++));
  }
  benchmark::DoNotOptimize(ptr.limbo_size());
}
BENCHMARK(BM_EpochPublish);

void BM_ShardedQuerySubmit(benchmark::State& state) {
  // Warm-cache submit(): epoch pin + shard hash + memo-cache hit. range(0)
  // is the shard count — 1 concentrates every key in one cache map, 16 is
  // the production default.
  const ServeFixture& f = serve_fixture();
  QueryServiceOptions options;
  options.threads = 1;
  options.shards = static_cast<std::size_t>(state.range(0));
  QueryService service(*f.sys, options);
  service.submit_batch(f.requests);  // warm every shard's cache
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.submit(f.requests[i++ & 4095]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ShardedQuerySubmit)->Arg(1)->Arg(16);

void BM_ShardedQueryUncached(benchmark::State& state) {
  // Full routing work per submit (cache off): what a cache miss costs on
  // the sharded plane, directly comparable to BM_QueryProcess in
  // micro_bench (same Algorithm 4, plus the serving-plane envelope).
  const ServeFixture& f = serve_fixture();
  QueryServiceOptions options;
  options.threads = 1;
  options.cache_enabled = false;
  QueryService service(*f.sys, options);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.submit(f.requests[i++ & 4095]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ShardedQueryUncached);

void BM_ShardedQueryShed(benchmark::State& state) {
  // The load-shedding path: token bucket empty, answer served from the
  // stale cache (last converged snapshot) with no routing work. The cold
  // bucket's burst admits exactly the warmup pass, so every timed submit
  // sheds with a stale answer.
  const ServeFixture& f = serve_fixture();
  QueryServiceOptions options;
  options.threads = 1;
  options.shards = 1;  // one bucket, so the warmup drains it exactly
  options.admission.rate_qps = 1e-6;  // never meaningfully refills
  options.admission.burst = static_cast<double>(f.requests.size());
  QueryService service(*f.sys, options);
  service.submit_batch(f.requests);  // admitted via cold burst; warms stale
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.submit(f.requests[i++ & 4095]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  const AdmissionStatsSnapshot admission = service.admission_stats();
  state.counters["shed_answer_share"] =
      admission.shed_total() == 0
          ? 0.0
          : static_cast<double>(admission.shed_with_answer) /
                static_cast<double>(admission.shed_total());
}
BENCHMARK(BM_ShardedQueryShed);

void BM_ShardedQueryOverload(benchmark::State& state) {
  // The overload acceptance scenario: offered load 4x the admitted
  // capacity, so ~3/4 of queries shed; the admitted ones are served
  // synchronously with no queueing, so their p99 should track
  // uncontended_p99_us (the p99_ratio counter is the acceptance number).
  //
  // The submitter is *paced* to 4x capacity rather than running full
  // speed: token refill is proportional to elapsed wall time, so under
  // unbounded offered load the only admitted submits are exactly the ones
  // whose measured window straddled a scheduler pause — the p99 would
  // measure preemption, not serving. A single paced submitter keeps the
  // 1-CPU container's scheduler out of the measurement.
  const ServeFixture& f = serve_fixture();

  QueryServiceOptions options;
  options.threads = 1;
  options.shards = 16;
  options.admission.rate_qps = 1000.0;  // 16k qps capacity service-wide
  // Large cold burst so the warmup pass below is admitted in full — the
  // admitted-vs-uncontended comparison must be warm-cache on both sides.
  options.admission.burst = 512.0;
  options.admission.queue_limit = 4;

  const double capacity =
      options.admission.rate_qps * static_cast<double>(options.shards);
  const double offered_x = 4.0;
  const auto interval = std::chrono::nanoseconds(
      static_cast<std::int64_t>(1e9 / (offered_x * capacity)));

  std::vector<double> base_us;  // uncontended reference: no admission
  {
    QueryServiceOptions base_options;
    base_options.threads = 1;
    QueryService service(*f.sys, base_options);
    service.submit_batch(f.requests);  // warm
    base_us.reserve(2 * f.requests.size());
    // Paced identically to the overload loop: both runs must expose the
    // same share of submits to the container's scheduler noise.
    auto base_next = std::chrono::steady_clock::now();
    for (int pass = 0; pass < 2; ++pass) {
      for (const QueryRequest& request : f.requests) {
        while (std::chrono::steady_clock::now() < base_next) {
        }
        base_next += interval;
        const auto t0 = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(service.submit(request));
        base_us.push_back(std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - t0)
                              .count());
      }
    }
  }

  QueryService service(*f.sys, options);
  service.submit_batch(f.requests);  // warm fresh + stale (cold burst)

  std::vector<double> admitted_us;
  std::uint64_t total = 0;
  std::uint64_t shed = 0;
  double elapsed_sec = 0.0;
  auto next = std::chrono::steady_clock::now();
  for (auto _ : state) {
    const auto pass_t0 = std::chrono::steady_clock::now();
    for (const QueryRequest& request : f.requests) {
      while (std::chrono::steady_clock::now() < next) {
        // spin: pacing must not yield the CPU (a sleep would batch refills)
      }
      next += interval;
      const auto t0 = std::chrono::steady_clock::now();
      const QueryResult r = service.submit(request);
      const double us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      ++total;
      if (r.status == QueryStatus::kShed) {
        ++shed;
      } else {
        admitted_us.push_back(us);
      }
    }
    elapsed_sec += std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - pass_t0)
                       .count();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total));
  const double offered =
      elapsed_sec > 0.0 ? static_cast<double>(total) / elapsed_sec : 0.0;
  const double base_p99 = p99_of(base_us);
  state.counters["uncontended_p99_us"] = base_p99;
  state.counters["admitted_p99_us"] = p99_of(admitted_us);
  state.counters["p99_ratio"] =
      base_p99 > 0.0 ? p99_of(admitted_us) / base_p99 : 0.0;
  state.counters["overload_x"] = capacity > 0.0 ? offered / capacity : 0.0;
  state.counters["shed_share"] =
      total == 0 ? 0.0
                 : static_cast<double>(shed) / static_cast<double>(total);
}
BENCHMARK(BM_ShardedQueryOverload)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  bcc::obs::BenchReport report("serve");
  bcc::BenchJsonReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!report.write()) {
    std::fprintf(stderr, "serve_bench: cannot write %s\n",
                 report.path().c_str());
    return 1;
  }
  std::fprintf(stderr, "benchmark telemetry written to %s\n",
               report.path().c_str());
  return 0;
}
