// Ablation A1 (DESIGN.md): the n_cut knob — §III.B.2 claims the aggregate
// limit "controls a messaging workload"; the cost is smaller clustering
// spaces, hence a lower return rate for large k. This harness quantifies
// both sides of the tradeoff on one dataset.
//
//   ./ablation_ncut --size 100 --rounds 5
#include <cstdio>

#include "common/options.h"
#include "common/table.h"
#include "obs/bench_report.h"
#include "core/system.h"
#include "exp/common.h"
#include "stats/accuracy.h"
#include "tree/embedder.h"

int main(int argc, char** argv) {
  using namespace bcc;
  Options opts("ablation_ncut", "n_cut sweep: messaging vs responsiveness");
  auto& size = opts.add_int("size", 100, "dataset size");
  auto& rounds = opts.add_int("rounds", 5, "frameworks per n_cut");
  auto& queries = opts.add_int("queries", 50, "queries per framework per k");
  auto& noise = opts.add_double("noise", 0.25, "dataset noise sigma");
  auto& seed = opts.add_int("seed", 42, "experiment seed");
  auto& csv = opts.add_bool("csv", false, "emit CSV instead of tables");
  opts.parse(argc, argv);
  obs::BenchReport report("ablation_ncut");

  Rng data_rng(static_cast<std::uint64_t>(seed));
  SynthOptions data_options;
  data_options.hosts = static_cast<std::size_t>(size);
  data_options.noise_sigma = noise;
  const SynthDataset data = synthesize_planetlab(data_options, data_rng);
  const std::size_t n = data.bandwidth.size();

  const std::vector<double> b_grid = exp::bandwidth_grid(15.0, 75.0, 5);
  const BandwidthClasses classes = exp::classes_for_grid(b_grid, data.c);
  const std::size_t k_small = std::max<std::size_t>(2, n / 10);
  const std::size_t k_large = std::max<std::size_t>(3, n / 4);

  std::printf("== Ablation A1: n_cut tradeoff (n=%zu, k_small=%zu, "
              "k_large=%zu) ==\n",
              n, k_small, k_large);
  TablePrinter table({"n_cut", "RR@k_small", "RR@k_large", "avg_space",
                      "gossip_KB/node/cycle", "conv_cycles"});

  for (std::size_t n_cut : {2ul, 5ul, 10ul, 20ul, 40ul}) {
    RrAccumulator rr_small, rr_large;
    double space_sum = 0.0, kb_sum = 0.0, cycles_sum = 0.0;
    std::size_t space_count = 0;
    Rng master(static_cast<std::uint64_t>(seed) + 1);
    for (std::int64_t round = 0; round < rounds; ++round) {
      Rng round_rng = master.split(static_cast<std::uint64_t>(round));
      Framework fw = build_framework(data.distances, round_rng);
      SystemOptions sys_options;
      sys_options.n_cut = n_cut;
      DecentralizedClusterSystem sys(fw.anchors, fw.predicted_distances(),
                                     classes, sys_options);
      const std::size_t cycles = sys.run_to_convergence();
      cycles_sum += static_cast<double>(cycles);
      kb_sum += static_cast<double>(sys.metrics().total_bytes()) / 1024.0 /
                static_cast<double>(n) / static_cast<double>(cycles);
      for (NodeId x = 0; x < n; ++x) {
        space_sum += static_cast<double>(sys.node(x).clustering_space().size());
        ++space_count;
      }
      Rng query_rng = round_rng.split(3);
      for (std::int64_t q = 0; q < queries; ++q) {
        const std::size_t cls = query_rng.below(classes.size());
        const NodeId start = static_cast<NodeId>(query_rng.below(n));
        rr_small.add_query(
            sys.query(QueryRequest::at_class(start, k_small, cls)).found());
        rr_large.add_query(
            sys.query(QueryRequest::at_class(start, k_large, cls)).found());
      }
    }
    table.add_numeric_row({static_cast<double>(n_cut), rr_small.rate(),
                   rr_large.rate(),
                   space_sum / static_cast<double>(space_count),
                   kb_sum / static_cast<double>(rounds),
                   cycles_sum / static_cast<double>(rounds)});
  }
  std::fputs(csv ? table.to_csv().c_str() : table.to_string().c_str(), stdout);
  obs::export_table(report, "main", table);
  report.write();
  return 0;
}
