// Ablation A4: the bandwidth-to-distance transform — §V reports that
// Euclidean embedding of bandwidth fails with the linear transform
// d = C − BW [21] and that the rational transform d = C/BW is "much" better
// (while still losing to the tree metric space). This harness reproduces
// that three-way comparison on one dataset, also including the Vivaldi
// height-vector variant (position + access-link height).
//
//   ./ablation_transform --size 150
#include <cstdio>

#include "common/options.h"
#include "common/table.h"
#include "obs/bench_report.h"
#include "data/planetlab_synth.h"
#include "stats/accuracy.h"
#include "stats/summary.h"
#include "tree/embedder.h"
#include "vivaldi/vivaldi.h"

namespace {

using namespace bcc;

struct ErrStats {
  double median_err = 0.0;
  double p90_err = 0.0;
};

ErrStats summarize(const std::vector<double>& errs) {
  return ErrStats{median(errs), percentile(errs, 90.0)};
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("ablation_transform",
               "bandwidth embedding: linear vs rational transform vs tree");
  auto& size = opts.add_int("size", 150, "dataset size");
  auto& rounds = opts.add_int("rounds", 5, "embeddings per configuration");
  auto& noise = opts.add_double("noise", 0.25, "dataset noise sigma");
  auto& seed = opts.add_int("seed", 42, "experiment seed");
  auto& csv = opts.add_bool("csv", false, "emit CSV instead of tables");
  opts.parse(argc, argv);
  obs::BenchReport report("ablation_transform");

  Rng data_rng(static_cast<std::uint64_t>(seed));
  SynthOptions data_options;
  data_options.hosts = static_cast<std::size_t>(size);
  data_options.noise_sigma = noise;
  const SynthDataset data = synthesize_planetlab(data_options, data_rng);
  const std::size_t n = data.bandwidth.size();

  double linear_c = 0.0;
  const DistanceMatrix linear_target =
      linear_transform_auto(data.bandwidth, &linear_c);

  std::vector<double> err_linear, err_rational, err_height, err_tree;
  Rng master(static_cast<std::uint64_t>(seed) + 1);
  for (std::int64_t round = 0; round < rounds; ++round) {
    Rng round_rng = master.split(static_cast<std::uint64_t>(round));

    // Vivaldi on the linear transform (the configuration §V calls poor):
    // predicted BW = C_lin − predicted distance.
    {
      Rng vrng = round_rng.split(1);
      Vivaldi v(n, vrng, {});
      v.run(linear_target);
      for (NodeId u = 0; u < n; ++u) {
        for (NodeId w = u + 1; w < n; ++w) {
          const double bw = data.bandwidth.at(u, w);
          const double bw_pred =
              linear_distance_to_bandwidth(v.distance(u, w), linear_c);
          err_linear.push_back(std::abs(bw - bw_pred) / bw);
        }
      }
    }
    // Vivaldi on the rational transform (flat and height-vector variants).
    for (bool height : {false, true}) {
      Rng vrng = round_rng.split(height ? 3 : 2);
      VivaldiOptions vopt;
      vopt.use_height = height;
      Vivaldi v(n, vrng, vopt);
      v.run(data.distances);
      auto errs =
          relative_bandwidth_errors(data.bandwidth, v.predicted_distances(),
                                    data.c);
      auto& sink = height ? err_height : err_rational;
      sink.insert(sink.end(), errs.begin(), errs.end());
    }
    // The prediction tree (rational transform by construction).
    {
      Rng trng = round_rng.split(4);
      const Framework fw = build_framework(data.distances, trng);
      auto errs = relative_bandwidth_errors(data.bandwidth,
                                            fw.predicted_distances(), data.c);
      err_tree.insert(err_tree.end(), errs.begin(), errs.end());
    }
  }

  std::printf("== Ablation A4: embedding bandwidth (n=%zu, noise=%.2f) ==\n",
              n, static_cast<double>(noise));
  TablePrinter table({"embedding", "median_rel_err", "p90_rel_err"});
  auto row = [&](const char* name, const std::vector<double>& errs) {
    const ErrStats s = summarize(errs);
    table.add_row({name, format_double(s.median_err, 4),
                   format_double(s.p90_err, 4)});
  };
  row("EUCL linear d=C-BW (GNP/Vivaldi legacy)", err_linear);
  row("EUCL rational d=C/BW", err_rational);
  row("EUCL rational + height vector", err_height);
  row("TREE (prediction tree)", err_tree);
  std::fputs(csv ? table.to_csv().c_str() : table.to_string().c_str(), stdout);
  obs::export_table(report, "main", table);
  report.write();
  return 0;
}
