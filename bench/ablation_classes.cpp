// Ablation A2 (DESIGN.md): bandwidth-class granularity — §III.B.3 limits
// queries to a predetermined class set L to bound CRT size. Coarser grids
// mean smaller routing tables but more conservative answers (b snaps up to
// the next class, over-delivering bandwidth) and more unanswerable queries.
//
//   ./ablation_classes --size 100
#include <cstdio>

#include "common/options.h"
#include "common/table.h"
#include "obs/bench_report.h"
#include "core/system.h"
#include "data/planetlab_synth.h"
#include "stats/accuracy.h"
#include "tree/embedder.h"

int main(int argc, char** argv) {
  using namespace bcc;
  Options opts("ablation_classes",
               "bandwidth-class granularity: CRT size vs answer quality");
  auto& size = opts.add_int("size", 100, "dataset size");
  auto& rounds = opts.add_int("rounds", 3, "frameworks per grid");
  auto& queries = opts.add_int("queries", 200, "arbitrary-b queries per round");
  auto& noise = opts.add_double("noise", 0.25, "dataset noise sigma");
  auto& seed = opts.add_int("seed", 42, "experiment seed");
  auto& csv = opts.add_bool("csv", false, "emit CSV instead of tables");
  opts.parse(argc, argv);
  obs::BenchReport report("ablation_classes");

  Rng data_rng(static_cast<std::uint64_t>(seed));
  SynthOptions data_options;
  data_options.hosts = static_cast<std::size_t>(size);
  data_options.noise_sigma = noise;
  const SynthDataset data = synthesize_planetlab(data_options, data_rng);
  const std::size_t n = data.bandwidth.size();
  const std::size_t k = std::max<std::size_t>(2, n / 20);

  std::printf("== Ablation A2: class granularity (n=%zu, k=%zu, arbitrary "
              "b in [5, 300]) ==\n",
              n, k);
  TablePrinter table({"class_step_mbps", "|L|", "CRT_entries/node",
                      "answerable", "RR", "mean_overshoot", "WPR"});

  for (double step : {5.0, 10.0, 25.0, 50.0, 100.0}) {
    const BandwidthClasses classes =
        BandwidthClasses::uniform_grid(step, 300.0, step, data.c);
    RrAccumulator rr;
    WprAccumulator wpr;
    double answerable = 0.0, overshoot_sum = 0.0, crt_entries = 0.0;
    std::size_t total = 0, overshoot_count = 0;

    Rng master(static_cast<std::uint64_t>(seed) + 1);
    for (std::int64_t round = 0; round < rounds; ++round) {
      Rng round_rng = master.split(static_cast<std::uint64_t>(round));
      Framework fw = build_framework(data.distances, round_rng);
      DecentralizedClusterSystem sys(fw.anchors, fw.predicted_distances(),
                                     classes, {});
      sys.run_to_convergence();
      for (NodeId x = 0; x < n; ++x) {
        // One |L|-sized vector per neighbor plus the self entry.
        crt_entries += static_cast<double>(classes.size()) *
                       static_cast<double>(sys.node(x).neighbors.size() + 1);
      }
      Rng query_rng = round_rng.split(3);
      for (std::int64_t q = 0; q < queries; ++q) {
        const double b = query_rng.uniform(5.0, 300.0);
        ++total;
        const auto cls = classes.class_for_bandwidth(b);
        if (!cls) continue;  // b stricter than the strictest class
        answerable += 1.0;
        overshoot_sum += classes.bandwidth_at(*cls) / b;
        ++overshoot_count;
        const NodeId start = static_cast<NodeId>(query_rng.below(n));
        const QueryResult outcome =
            sys.query(QueryRequest::at_class(start, k, *cls));
        rr.add_query(outcome.found());
        if (outcome.found()) {
          wpr.add_cluster(data.bandwidth, outcome.cluster, b);
        }
      }
    }
    table.add_numeric_row(
        {step, static_cast<double>(classes.size()),
         crt_entries / static_cast<double>(n) / static_cast<double>(rounds),
         answerable / static_cast<double>(total), rr.rate(),
         overshoot_count ? overshoot_sum / static_cast<double>(overshoot_count)
                         : 0.0,
         wpr.rate()});
  }
  std::fputs(csv ? table.to_csv().c_str() : table.to_string().c_str(), stdout);
  obs::export_table(report, "main", table);
  report.write();
  return 0;
}
