// Query-observatory overhead benchmarks (google-benchmark): pins the two
// overhead contracts the observability ISSUE ships with —
//
//   * disabled path: exemplar hooks, explain stage clocks, and the sampling
//     profiler's would-be hooks must cost ~nothing when off.
//     BM_SubmitObservatoryOff is the same warm-cache submit loop as
//     serve_bench's BM_ShardedQuerySubmit/16, so bench_diff against the
//     committed baseline catches any disabled-path creep (<= 1% budget).
//   * enabled path: a 99 Hz SIGPROF sampler may cost at most a few percent
//     on the serve plane. BM_ProfilerOverheadAB measures plain / explain /
//     profiled passes back-to-back in one process and exports the ratios as
//     counters, so the committed BENCH_profile.json carries the A/B
//     verdict, not just absolute timings that drift with the machine.
//
// Results are exported machine-readably like the other harnesses: main()
// mirrors every run into BENCH_profile.json via obs::BenchReport, and
// tools/bench_smoke.sh diffs the fast subset against the committed
// bench/BENCH_profile.json baseline.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_json_reporter.h"
#include "core/system.h"
#include "data/topology_gen.h"
#include "exp/common.h"
#include "obs/bench_report.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "serve/query_service.h"
#include "tree/embedder.h"

namespace {

using namespace bcc;

// Shared converged system + a mixed request stream, like serve_bench's
// fixture but smaller: these benches compare paths against each other, not
// against Algorithm 4's absolute cost.
struct ProfileFixture {
  std::unique_ptr<DecentralizedClusterSystem> sys;
  std::vector<QueryRequest> requests;
};

const ProfileFixture& profile_fixture() {
  static const ProfileFixture fixture = [] {
    ProfileFixture f;
    const std::size_t n = 120;
    Rng topo_rng(50);
    TopologyOptions topo;
    topo.hosts = n;
    const DistanceMatrix d = generate_topology(topo, topo_rng).distances();
    Rng rng(51);
    Framework fw = build_framework(d, rng);
    const BandwidthClasses classes =
        exp::classes_for_grid(exp::bandwidth_grid(15.0, 75.0, 5));
    f.sys = std::make_unique<DecentralizedClusterSystem>(
        fw.anchors, fw.predicted_distances(), classes, SystemOptions{});
    f.sys->run_to_convergence();
    Rng query_rng(52);
    f.requests.reserve(2048);
    for (std::size_t i = 0; i < 2048; ++i) {
      f.requests.push_back(QueryRequest::at_class(
          static_cast<NodeId>(query_rng.below(n)), 2 + query_rng.below(12),
          query_rng.below(classes.size())));
    }
    return f;
  }();
  return fixture;
}

void BM_HistogramRecordPlain(benchmark::State& state) {
  // The pre-exemplar hot path: striped-counter bump into one bucket.
  obs::Histogram h;
  std::uint64_t v = 1;
  for (auto _ : state) {
    h.record(v++ & 1023);
  }
  benchmark::DoNotOptimize(h.snapshot().count);
}
BENCHMARK(BM_HistogramRecordPlain);

void BM_HistogramRecordExemplar(benchmark::State& state) {
  // record_with_exemplar with a live trace id: the plain record plus one
  // steady_clock read and one striped mutex for the exemplar slot. This is
  // the worst case — production queries only carry a nonzero id while
  // tracing is enabled.
  obs::Histogram h;
  std::uint64_t v = 1;
  for (auto _ : state) {
    h.record_with_exemplar(v & 1023, /*trace_id=*/v);
    ++v;
  }
  benchmark::DoNotOptimize(h.snapshot().count);
}
BENCHMARK(BM_HistogramRecordExemplar);

void BM_HistogramRecordExemplarOff(benchmark::State& state) {
  // Trace id 0 (tracing off): must cost the same as plain record — the
  // exemplar branch is one predictable compare.
  obs::Histogram h;
  std::uint64_t v = 1;
  for (auto _ : state) {
    h.record_with_exemplar(v++ & 1023, /*trace_id=*/0);
  }
  benchmark::DoNotOptimize(h.snapshot().count);
}
BENCHMARK(BM_HistogramRecordExemplarOff);

void BM_SubmitObservatoryOff(benchmark::State& state) {
  // Warm-cache submit with every observatory feature off: no profile flag,
  // no sampler. Mirrors serve_bench's BM_ShardedQuerySubmit/16 so the two
  // baselines cross-check each other.
  const ProfileFixture& f = profile_fixture();
  QueryServiceOptions options;
  options.threads = 1;
  options.shards = 16;
  QueryService service(*f.sys, options);
  service.submit_batch(f.requests);  // warm every shard's cache
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.submit(f.requests[i++ & 2047]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SubmitObservatoryOff);

void BM_SubmitExplain(benchmark::State& state) {
  // Same loop with QueryRequest::with_profile(): what one explain profile
  // costs — a handful of steady_clock reads plus the optional's copy out.
  const ProfileFixture& f = profile_fixture();
  QueryServiceOptions options;
  options.threads = 1;
  options.shards = 16;
  QueryService service(*f.sys, options);
  service.submit_batch(f.requests);
  std::size_t i = 0;
  for (auto _ : state) {
    QueryRequest request = f.requests[i++ & 2047];
    request.with_profile();
    benchmark::DoNotOptimize(service.submit(request));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SubmitExplain);

void BM_ProfilerOverheadAB(benchmark::State& state) {
  // Three passes over the identical warm-cache submit loop, back-to-back in
  // one process: plain, explain-profiled, and with the 99 Hz CPU sampler
  // armed. The exported counters are the contract:
  //   explain_overhead_pct    — cost of opting one query into explain
  //   profiler99_overhead_pct — fleet-wide cost of leaving the sampler on
  // (<= 5% is the acceptance budget for the latter; tests assert the bench
  // at least produced sane, non-negative numbers).
  const ProfileFixture& f = profile_fixture();
  QueryServiceOptions options;
  options.threads = 1;
  options.shards = 16;
  QueryService service(*f.sys, options);
  service.submit_batch(f.requests);

  constexpr std::size_t kOps = 20000;
  auto pass_ns_per_op = [&](bool explain) {
    std::size_t i = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t op = 0; op < kOps; ++op) {
      QueryRequest request = f.requests[i++ & 2047];
      if (explain) request.with_profile();
      benchmark::DoNotOptimize(service.submit(request));
    }
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    return static_cast<double>(ns) / static_cast<double>(kOps);
  };

  double plain = 0.0, explain = 0.0, on99 = 0.0;
  for (auto _ : state) {
    plain = pass_ns_per_op(false);
    explain = pass_ns_per_op(true);
    obs::SamplingProfiler& profiler = obs::SamplingProfiler::global();
    obs::SamplingProfiler::Options po;
    po.hz = 99;
    const bool armed = profiler.start(po);
    on99 = pass_ns_per_op(false);
    if (armed) profiler.stop();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 3 *
                          static_cast<std::int64_t>(kOps));
  auto pct_over = [&](double x) {
    return plain > 0.0 ? 100.0 * (x - plain) / plain : 0.0;
  };
  state.counters["plain_ns_per_op"] = plain;
  state.counters["explain_ns_per_op"] = explain;
  state.counters["profiler99_ns_per_op"] = on99;
  state.counters["explain_overhead_pct"] = pct_over(explain);
  state.counters["profiler99_overhead_pct"] = pct_over(on99);
}
BENCHMARK(BM_ProfilerOverheadAB)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  bcc::obs::BenchReport report("profile");
  bcc::BenchJsonReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!report.write()) {
    std::fprintf(stderr, "profile_bench: cannot write %s\n",
                 report.path().c_str());
    return 1;
  }
  std::fprintf(stderr, "benchmark telemetry written to %s\n",
               report.path().c_str());
  return 0;
}
