// Single-node search — the paper's first future-work extension (§VI):
// given a set of nodes already running a job, find one more node with high
// bandwidth to *all* of them (e.g. to host a shared checkpoint replica or
// to join an in-progress workflow).
//
// Demonstrates both the exact centralized search over predicted distances
// and the decentralized flavour (searching only a member's clustering
// space), and validates the picks against real bandwidth.
#include <cstdio>

#include "bcc.h"

int main() {
  using namespace bcc;
  Rng rng(23);
  SynthOptions data_options;
  data_options.hosts = 130;
  const SynthDataset net = synthesize_planetlab(data_options, rng);
  const std::size_t n = net.bandwidth.size();

  const Framework fw = build_framework(net.distances, rng);
  const DistanceMatrix pred = fw.predicted_distances();
  SystemOptions options;
  options.n_cut = 12;
  DecentralizedClusterSystem sys(fw.anchors, pred,
                                 BandwidthClasses::uniform_grid(10, 150, 10),
                                 options);
  sys.run_to_convergence();

  // The job currently runs on a bandwidth-constrained cluster of 6.
  const QueryResult job =
      sys.query(QueryRequest::bandwidth(/*start=*/4, /*k=*/6, /*b_mbps=*/40.0));
  if (!job.found()) {
    std::printf("bootstrap failed: no 6-node 40 Mbps cluster in this network\n");
    return 1;
  }
  std::printf("job members:");
  for (NodeId h : job.cluster) std::printf(" %zu", h);
  std::printf("\n\n");

  std::vector<NodeId> universe(n);
  for (NodeId i = 0; i < n; ++i) universe[i] = i;

  // Centralized exact search over the predicted metric.
  const auto central = find_best_node(pred, universe, job.cluster);
  // Decentralized flavour: a member searches only its clustering space.
  const auto& member = sys.node(job.cluster.front());
  const auto local_space = member.clustering_space();
  const auto local = find_best_node(pred, local_space, job.cluster);

  auto report = [&](const char* name, const NodeSearchResult& r) {
    double real_min = std::numeric_limits<double>::infinity();
    for (NodeId t : job.cluster) {
      real_min = std::min(real_min, net.bandwidth.at(r.node, t));
    }
    std::printf("%-22s node %3zu | predicted min BW %6.1f Mbps | real min "
                "BW %6.1f Mbps\n",
                name, r.node, r.min_bandwidth(net.c), real_min);
  };
  if (central) report("centralized search:", *central);
  if (local) report("clustering-space search:", *local);

  // All candidates that clear a 40 Mbps floor, best-first.
  const double l = bandwidth_to_distance(40.0, net.c);
  const auto candidates = find_nodes_within(pred, universe, job.cluster, l);
  std::printf("\n%zu candidate nodes predicted to give >= 40 Mbps to every "
              "member; top 5:\n",
              candidates.size());
  for (std::size_t i = 0; i < candidates.size() && i < 5; ++i) {
    std::printf("  node %3zu (predicted min %.1f Mbps)\n", candidates[i].node,
                candidates[i].min_bandwidth(net.c));
  }
  return 0;
}
