// P2P desktop-grid job scheduling — the paper's motivating application
// (§I, §V): a data-intensive scientific workflow (CyberShake-style) runs
// fastest on a set of workers with high pairwise bandwidth, because workers
// exchange large intermediate files all-to-all.
//
// The grid spans several sites with fat access links inside a site but thin
// long-haul links between sites — the regime where per-node heuristics fail.
// Three worker-selection policies are compared for the same workflow:
//   random       — k random volunteers,
//   greedy-star  — k volunteers with the best predicted bandwidth to the
//                  submitter (a common heuristic, blind to pairwise links:
//                  fat-access hosts in *other* sites look great to it),
//   bcc-cluster  — a bandwidth-constrained cluster from the decentralized
//                  system (Algorithm 4), which is pairwise by construction.
// Makespan is then estimated from the *real* bandwidth matrix: each of the R
// data-exchange rounds ships F megabits between every worker pair, and a
// round is as slow as its slowest pair.
#include <algorithm>
#include <cstdio>

#include "bcc.h"

namespace {

using namespace bcc;

/// Makespan (seconds) of R all-to-all exchange rounds of F Mbit per pair,
/// each round gated by the slowest link of the worker set.
double makespan_seconds(const BandwidthMatrix& real, const Cluster& workers,
                        double mbit_per_pair, int exchange_rounds) {
  double worst_bw = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < workers.size(); ++i) {
    for (std::size_t j = i + 1; j < workers.size(); ++j) {
      worst_bw = std::min(worst_bw, real.at(workers[i], workers[j]));
    }
  }
  return exchange_rounds * mbit_per_pair / worst_bw;
}

double worst_pair_bw(const BandwidthMatrix& real, const Cluster& workers) {
  double worst = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < workers.size(); ++i) {
    for (std::size_t j = i + 1; j < workers.size(); ++j) {
      worst = std::min(worst, real.at(workers[i], workers[j]));
    }
  }
  return worst;
}

}  // namespace

int main() {
  Rng rng(7);

  // A multi-site grid, built by hand to mirror a common deployment shape:
  // the submitter works at a small branch site (5 hosts on premium ~150 Mbps
  // access links), five large compute sites hold 29 hosts each on ~90 Mbps
  // access, and sites interconnect over thin ~35 Mbps long-haul links.
  // To the submitter, its 4 site-mates look great — but a 12-worker set must
  // pull in off-site hosts across the thin core. A full 12-cluster with fat
  // pairwise links exists only inside a big site, which is exactly what the
  // decentralized query should route to.
  const std::size_t n = 150;
  const NodeId submitter = 3;  // one of the 5 branch-site hosts
  WeightedTree phys;
  std::vector<TreeVertex> site(6);
  for (auto& s : site) s = phys.add_vertex();
  for (std::size_t s = 1; s < 6; ++s) {
    phys.connect(site[0], site[s],
                 bandwidth_to_distance(rng.uniform(30.0, 40.0)));
  }
  std::vector<TreeVertex> host_leaf(n);
  for (NodeId h = 0; h < n; ++h) {
    host_leaf[h] = phys.add_vertex();
    const bool branch = h < 5;
    const std::size_t s = branch ? 0 : 1 + (h - 5) % 5;
    const double access_bw =
        branch ? rng.uniform(130.0, 170.0) : rng.lognormal(4.5, 0.5);
    phys.connect(site[s], host_leaf[h], bandwidth_to_distance(access_bw));
  }
  Topology topo{std::move(phys), std::move(host_leaf), kDefaultTransformC};
  BandwidthMatrix real(n);
  {
    const BandwidthMatrix clean = topo.bandwidths();
    for (NodeId u = 0; u < clean.size(); ++u) {
      for (NodeId v = u + 1; v < clean.size(); ++v) {
        real.set(u, v, clean.at(u, v) * rng.lognormal(0.0, 0.1));
      }
    }
  }
  const DistanceMatrix measured = rational_transform(real);

  // The grid's resource-discovery layer: prediction framework + clustering.
  const Framework fw = build_framework(measured, rng);
  SystemOptions options;
  options.n_cut = 12;
  DecentralizedClusterSystem sys(fw.anchors, fw.predicted_distances(),
                                 BandwidthClasses::uniform_grid(10, 120, 10),
                                 options);
  sys.run_to_convergence();

  // The workflow: 12 workers, 20 exchange rounds of 400 Mbit per pair.
  const std::size_t k = 12;
  const double mbit = 400.0;
  const int exchange_rounds = 20;

  // Policy 1: random volunteers.
  Cluster random_workers;
  {
    auto ids = rng.sample_indices(n, k);
    random_workers.assign(ids.begin(), ids.end());
  }

  // Policy 2: greedy star around the submitter (best predicted links to it).
  Cluster star_workers;
  {
    std::vector<std::pair<double, NodeId>> by_bw;
    for (NodeId h = 0; h < n; ++h) {
      if (h == submitter) continue;
      by_bw.emplace_back(-fw.prediction.predicted_bandwidth(submitter, h), h);
    }
    std::sort(by_bw.begin(), by_bw.end());
    for (std::size_t i = 0; i < k; ++i) star_workers.push_back(by_bw[i].second);
  }

  // Policy 3: bandwidth-constrained cluster — the strictest feasible class
  // at or below the 75th percentile of grid bandwidth (the paper's
  // evaluation envelope).
  Cluster bcc_workers;
  double promised_b = 0.0;
  {
    const double target_b =
        std::min(real.percentile(75.0),
                 sys.classes().bandwidth_at(sys.classes().size() - 1));
    for (std::size_t cls = *sys.classes().class_for_bandwidth(target_b) + 1;
         cls-- > 0;) {
      const QueryResult r = sys.query(QueryRequest::at_class(submitter, k,
                                                             cls));
      if (r.found()) {
        bcc_workers = r.cluster;
        promised_b = sys.classes().bandwidth_at(cls);
        break;
      }
    }
  }

  std::printf("desktop grid: %zu hosts across 6 sites; workflow: %zu workers, "
              "%d exchange rounds, %.0f Mbit/pair/round\n\n",
              n, k, exchange_rounds, mbit);
  std::printf("%-14s | %-12s | makespan\n", "policy", "min pair BW");
  std::printf("---------------+--------------+---------\n");
  auto report = [&](const char* name, const Cluster& workers) {
    if (workers.empty()) {
      std::printf("%-14s | no cluster found\n", name);
      return;
    }
    std::printf("%-14s | %7.1f Mbps | %7.1f s\n", name,
                worst_pair_bw(real, workers),
                makespan_seconds(real, workers, mbit, exchange_rounds));
  };
  report("random", random_workers);
  report("greedy-star", star_workers);
  report("bcc-cluster", bcc_workers);
  if (!bcc_workers.empty()) {
    std::printf("\nbcc-cluster was promised >= %.0f Mbps between every pair "
                "(strictest feasible class <= p75).\n",
                promised_b);
  }
  return 0;
}
