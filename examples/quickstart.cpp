// Quickstart: the whole bcc pipeline in ~60 lines.
//
// 1. Get bandwidth measurements (here: a synthetic PlanetLab-like dataset).
// 2. Build the decentralized bandwidth-prediction framework (§II.D) — hosts
//    join one by one, measuring only O(log n) peers each.
// 3. Stand up the decentralized clustering system (Algorithms 2-3 gossip).
// 4. Submit a (k, b) query at an arbitrary node (Algorithm 4) and inspect
//    the returned bandwidth-constrained cluster.
#include <cstdio>

#include "bcc.h"

int main() {
  using namespace bcc;

  // 1. A 100-host network whose pairwise bandwidth we "measured".
  Rng rng(2026);
  SynthOptions data_options;
  data_options.hosts = 100;
  const SynthDataset data = synthesize_planetlab(data_options, rng);
  std::printf("dataset: %zu hosts, pairwise bandwidth %.0f..%.0f Mbps\n",
              data.bandwidth.size(), data.bandwidth.percentile(0),
              data.bandwidth.percentile(100));

  // 2. Embed the measurements into a prediction tree; the anchor tree is the
  //    overlay the clustering protocols will run on.
  const Framework fw = build_framework(data.distances, rng);
  std::printf("prediction framework: %zu hosts, overlay diameter %zu hops\n",
              fw.prediction.host_count(), fw.anchors.diameter());

  // 3. The decentralized clustering system: bandwidth classes every 10 Mbps,
  //    each node aggregates at most n_cut = 10 close nodes per neighbor.
  SystemOptions options;
  options.n_cut = 10;
  DecentralizedClusterSystem sys(fw.anchors, fw.predicted_distances(),
                                 BandwidthClasses::uniform_grid(10, 200, 10),
                                 options);
  const std::size_t cycles = sys.run_to_convergence();
  std::printf("gossip converged in %zu cycles (%zu messages)\n", cycles,
              sys.metrics().total_messages());

  // 4. "Find me 8 hosts with >= 40 Mbps between every pair", asked at host 17.
  const QueryOutcome result = sys.query_bandwidth(/*start=*/17, /*k=*/8,
                                                  /*b=*/40.0);
  if (!result.found()) {
    std::printf("no such cluster exists\n");
    return 0;
  }
  std::printf("cluster found after %zu routing hops:", result.hops);
  for (NodeId h : result.cluster) std::printf(" %zu", h);
  std::printf("\n");

  // Check the answer against the real (noisy) measurements.
  WprAccumulator wpr;
  wpr.add_cluster(data.bandwidth, result.cluster, 40.0);
  std::printf("real-bandwidth check: %zu/%zu pairs below the constraint "
              "(WPR %.3f)\n",
              wpr.wrong_pairs(), wpr.total_pairs(), wpr.rate());
  return 0;
}
