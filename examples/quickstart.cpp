// Quickstart: the whole bcc pipeline in ~60 lines.
//
// 1. Get bandwidth measurements (here: a synthetic PlanetLab-like dataset).
// 2. Build the decentralized bandwidth-prediction framework (§II.D) — hosts
//    join one by one, measuring only O(log n) peers each.
// 3. Stand up the decentralized clustering system (Algorithms 2-3 gossip).
// 4. Serve a batch of (k, b) queries through the QueryService (Algorithm 4
//    fanned over a thread pool, all against one immutable snapshot) and
//    inspect the structured results.
#include <cstdio>
#include <vector>

#include "bcc.h"

int main() {
  using namespace bcc;

  // 1. A 100-host network whose pairwise bandwidth we "measured".
  Rng rng(2026);
  SynthOptions data_options;
  data_options.hosts = 100;
  const SynthDataset data = synthesize_planetlab(data_options, rng);
  std::printf("dataset: %zu hosts, pairwise bandwidth %.0f..%.0f Mbps\n",
              data.bandwidth.size(), data.bandwidth.percentile(0),
              data.bandwidth.percentile(100));

  // 2. Embed the measurements into a prediction tree; the anchor tree is the
  //    overlay the clustering protocols will run on.
  const Framework fw = build_framework(data.distances, rng);
  std::printf("prediction framework: %zu hosts, overlay diameter %zu hops\n",
              fw.prediction.host_count(), fw.anchors.diameter());

  // 3. The decentralized clustering system: bandwidth classes every 10 Mbps,
  //    each node aggregates at most n_cut = 10 close nodes per neighbor.
  SystemOptions options;
  options.n_cut = 10;
  DecentralizedClusterSystem sys(fw.anchors, fw.predicted_distances(),
                                 BandwidthClasses::uniform_grid(10, 200, 10),
                                 options);
  const std::size_t cycles = sys.run_to_convergence();
  std::printf("gossip converged in %zu cycles (%zu messages)\n", cycles,
              sys.metrics().total_messages());

  // 4. Serve a batch of queries concurrently: "k hosts with >= b Mbps
  //    between every pair", entering the overlay at different hosts. The
  //    service snapshots the converged state once; every query in the batch
  //    is answered against that same snapshot.
  QueryServiceOptions serve_options;
  serve_options.threads = 4;
  QueryService service(sys, serve_options);
  const std::vector<QueryRequest> batch = {
      QueryRequest::bandwidth(/*start=*/17, /*k=*/8, /*b_mbps=*/40.0),
      QueryRequest::bandwidth(/*start=*/3, /*k=*/12, /*b_mbps=*/25.0),
      QueryRequest::bandwidth(/*start=*/64, /*k=*/5, /*b_mbps=*/90.0),
      QueryRequest::bandwidth(/*start=*/0, /*k=*/6, /*b_mbps=*/10000.0),
  };
  const std::vector<QueryResult> results = service.submit_batch(batch);

  for (std::size_t i = 0; i < results.size(); ++i) {
    const QueryResult& r = results[i];
    std::printf("query %zu (start=%zu k=%zu b=%.0f): %s", i, batch[i].start,
                batch[i].k, *batch[i].bandwidth_mbps(), to_string(r.status));
    if (!r.found()) {
      std::printf("\n");
      continue;
    }
    std::printf(", %zu hops, %zu us:", r.hops,
                static_cast<std::size_t>(r.micros));
    for (NodeId h : r.cluster) std::printf(" %zu", h);
    std::printf("\n");

    // Check the answer against the real (noisy) measurements.
    WprAccumulator wpr;
    wpr.add_cluster(data.bandwidth, r.cluster, *batch[i].bandwidth_mbps());
    std::printf("  real-bandwidth check: %zu/%zu pairs below the constraint "
                "(WPR %.3f)\n",
                wpr.wrong_pairs(), wpr.total_pairs(), wpr.rate());
  }

  // The service keeps per-status counters, a hop histogram, and latency
  // percentiles for free:
  const QueryStats::Snapshot stats = service.stats();
  std::printf("served %zu queries: %zu found, %zu not_found, "
              "%zu unsatisfiable, p99 latency <= %zu us\n",
              static_cast<std::size_t>(stats.total()),
              static_cast<std::size_t>(stats.count(QueryStatus::kFound)),
              static_cast<std::size_t>(stats.count(QueryStatus::kNotFound)),
              static_cast<std::size_t>(
                  stats.count(QueryStatus::kBandwidthUnsatisfiable)),
              static_cast<std::size_t>(stats.latency_percentile_micros(99.0)));
  return 0;
}
