// Content-delivery scenario (paper §I, §V): distribute a large file to all
// subscribers quickly by partitioning them into high-bandwidth clusters,
// seeding one representative per cluster, and letting the data spread
// within each cluster over its fast links.
//
// The CDN operator plans centrally but on *predicted* bandwidth from the
// decentralized prediction framework (so no n-to-n measurement campaign is
// ever run): repeatedly take the largest cluster meeting the intra-cluster
// bandwidth target (Algorithm 1) and remove it, then compare the two-stage
// distribution time with a naive direct-unicast-from-origin plan.
#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "bcc.h"

namespace {

using namespace bcc;

}  // namespace

int main() {
  Rng rng(11);
  SynthOptions data_options;
  data_options.hosts = 120;
  const SynthDataset net = synthesize_planetlab(data_options, rng);
  const std::size_t n = net.bandwidth.size();
  const double file_mbit = 8000.0;  // a 1 GB file
  const double target_b = 50.0;     // wanted intra-cluster bandwidth (Mbps)
  const NodeId origin = 0;

  // The CDN operator knows the subscriber list, so it plans centrally on the
  // *predicted* metric from the decentralized prediction framework (no
  // n-to-n measurements): repeatedly take the largest cluster meeting the
  // intra-cluster bandwidth target and remove it (Algorithm 1 each step).
  const Framework fw = build_framework(net.distances, rng);
  const DistanceMatrix pred = fw.predicted_distances();
  const double l = bandwidth_to_distance(target_b, net.c);

  std::vector<NodeId> subscribers;
  for (NodeId h = 0; h < n; ++h) {
    if (h != origin) subscribers.push_back(h);
  }
  const Partition plan = partition_into_clusters(pred, subscribers, l);
  const std::vector<Cluster>& clusters = plan.clusters;
  const std::vector<NodeId>& stragglers = plan.stragglers;

  std::printf("CDN: %zu subscribers, %.0f Mbit file, target %.0f Mbps "
              "intra-cluster\n",
              n - 1, file_mbit, target_b);
  std::printf("carved %zu clusters (+%zu stragglers pulling from cluster reps)\n\n",
              clusters.size(), stragglers.size());

  // Naive plan: origin unicasts to everyone, one after another per link —
  // bounded by each subscriber's real link from the origin (sequentialized
  // in waves of 8 parallel streams).
  double naive_time = 0.0;
  {
    std::vector<double> times;
    for (NodeId h = 0; h < n; ++h) {
      if (h != origin) times.push_back(file_mbit / net.bandwidth.at(origin, h));
    }
    std::sort(times.begin(), times.end());
    const std::size_t streams = 8;
    for (std::size_t i = 0; i < times.size(); i += streams) {
      naive_time += times[std::min(i + streams, times.size()) - 1];
    }
  }

  // Cluster plan: stage 1, the origin seeds only each cluster's
  // representative (parallel waves of 8); stage 2, data floods inside each
  // cluster gated by the slowest *real* intra-cluster link, while each
  // straggler pulls from whichever cluster representative predicts the best
  // link to it (never from the origin's thin uplink).
  double stage1 = 0.0, stage2 = 0.0;
  {
    std::vector<double> rep_times;
    for (const Cluster& c : clusters) {
      rep_times.push_back(file_mbit / net.bandwidth.at(origin, c.front()));
    }
    std::sort(rep_times.begin(), rep_times.end());
    const std::size_t streams = 8;
    for (std::size_t i = 0; i < rep_times.size(); i += streams) {
      stage1 += rep_times[std::min(i + streams, rep_times.size()) - 1];
    }
    for (const Cluster& c : clusters) {
      double worst = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < c.size(); ++i) {
        for (std::size_t j = i + 1; j < c.size(); ++j) {
          worst = std::min(worst, net.bandwidth.at(c[i], c[j]));
        }
      }
      stage2 = std::max(stage2, file_mbit / worst);
    }
    for (NodeId h : stragglers) {
      // Best representative by *predicted* bandwidth; charged at real BW.
      NodeId best_rep = origin;
      double best_pred = 0.0;
      for (const Cluster& c : clusters) {
        const double predicted =
            distance_to_bandwidth(pred.at(c.front(), h), net.c);
        if (predicted > best_pred) {
          best_pred = predicted;
          best_rep = c.front();
        }
      }
      stage2 = std::max(stage2, file_mbit / net.bandwidth.at(best_rep, h));
    }
  }

  std::printf("naive origin-unicast plan : %8.1f s\n", naive_time);
  std::printf("cluster two-stage plan    : %8.1f s  (seed %.1f s + "
              "intra-cluster %.1f s)\n",
              stage1 + stage2, stage1, stage2);
  std::printf("\ncluster sizes:");
  for (const Cluster& c : clusters) std::printf(" %zu", c.size());
  std::printf("\n");
  return 0;
}
