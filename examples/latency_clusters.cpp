// Latency-constrained clustering — the paper's third future-work item (§VI):
// "since latency can also be successfully embedded into a tree metric space,
// we expect that our decentralized clustering approach can be directly
// applied to find a cluster under a latency constraint."
//
// Latency is already "smaller is better", so no rational transform is
// needed: the RTT matrix *is* the distance matrix, and a latency ceiling
// L_max is the diameter constraint directly. Everything else — embedding,
// gossip, query routing — is reused unchanged, which is exactly the point.
#include <cstdio>

#include "bcc.h"

int main() {
  using namespace bcc;
  Rng rng(31);
  const std::size_t n = 140;
  LatencyOptions latency_options;
  latency_options.hosts = n;
  latency_options.jitter_sigma = 0.15;
  const DistanceMatrix rtt = synthesize_latency(latency_options, rng);
  std::printf("latency dataset: %zu hosts, RTT %.1f..%.1f ms\n", n,
              rtt.min_distance(), rtt.max_distance());

  // Same embedding machinery, fed RTTs instead of transformed bandwidth.
  const Framework fw = build_framework(rtt, rng);
  const DistanceMatrix pred = fw.predicted_distances();

  // Distance classes are latency ceilings; express them through the
  // rational transform so the same BandwidthClasses plumbing applies:
  // a ceiling of L ms is the class b = C / L.
  const double c = kDefaultTransformC;
  std::vector<double> ceilings_ms = {10, 20, 30, 50, 80, 120};
  std::vector<double> class_values;
  for (double ms : ceilings_ms) class_values.push_back(c / ms);
  SystemOptions options;
  options.n_cut = 12;
  DecentralizedClusterSystem sys(fw.anchors, pred,
                                 BandwidthClasses(class_values, c), options);
  sys.run_to_convergence();

  std::printf("\n%-14s | %-9s | result\n", "RTT ceiling", "k");
  std::printf("---------------+-----------+---------------------------\n");
  for (double ceiling : {20.0, 40.0, 80.0}) {
    for (std::size_t k : {5ul, 20ul, 45ul}) {
      const auto cls = sys.classes().class_for_bandwidth(c / ceiling);
      if (!cls) continue;
      const QueryResult r = sys.query(QueryRequest::at_class(/*start=*/2, k,
                                                             *cls));
      if (!r.found()) {
        std::printf("%10.0f ms  | k = %-4zu | no cluster\n", ceiling, k);
        continue;
      }
      // Validate against the true RTT matrix.
      double worst = 0.0;
      for (std::size_t i = 0; i < r.cluster.size(); ++i) {
        for (std::size_t j = i + 1; j < r.cluster.size(); ++j) {
          worst = std::max(worst, rtt.at(r.cluster[i], r.cluster[j]));
        }
      }
      std::printf("%10.0f ms  | k = %-4zu | found in %zu hops, true max "
                  "RTT %.1f ms\n",
                  ceiling, k, r.hops, worst);
    }
  }
  std::printf("\n(the same Algorithms 1-4 ran unmodified; only the metric "
              "changed)\n");
  return 0;
}
