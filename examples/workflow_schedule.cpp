// Scheduling a CyberShake-like scientific workflow on a desktop grid —
// the paper's §I motivation, end to end with the workload substrate:
// generate the workflow DAG, pick worker sets three ways, schedule
// identically, and compare estimated makespans on real bandwidth.
//
// Also demonstrates framework snapshotting: the prediction framework is
// saved to disk and reloaded, as a long-running grid would across restarts.
#include <cstdio>
#include <filesystem>

#include "bcc.h"

int main() {
  using namespace bcc;
  Rng rng(99);

  // The grid.
  SynthOptions net_options;
  net_options.hosts = 160;
  const SynthDataset grid = synthesize_planetlab(net_options, rng);
  const std::size_t n = grid.bandwidth.size();

  // The prediction framework — built once, snapshotted, reloaded (restart).
  const Framework built = build_framework(grid.distances, rng);
  const auto snapshot =
      (std::filesystem::temp_directory_path() / "bcc_grid_framework.txt")
          .string();
  save_framework(built, snapshot);
  const Framework fw = load_framework(snapshot);
  std::printf("framework: %zu hosts (reloaded from %s)\n",
              fw.prediction.host_count(), snapshot.c_str());

  SystemOptions sys_options;
  sys_options.n_cut = 12;
  DecentralizedClusterSystem sys(fw.anchors, fw.predicted_distances(),
                                 BandwidthClasses::uniform_grid(10, 150, 10),
                                 sys_options);
  sys.run_to_convergence();

  // The workflow: 3 stages x 24 tasks, heavy intermediate files.
  WorkflowOptions wf_options;
  wf_options.stages = 3;
  wf_options.tasks_per_stage = 24;
  wf_options.transfer_mean_mbit = 1200.0;
  const Workflow wf = Workflow::cybershake_like(wf_options, rng);
  std::printf("workflow: %zu tasks, %zu transfers, %.0f Mbit total\n\n",
              wf.tasks().size(), wf.transfers().size(),
              wf.total_transfer_mbits());

  const std::size_t workers = 12;
  const NodeId submitter = 5;

  // Worker sets.
  Cluster random_set;
  {
    auto ids = rng.sample_indices(n, workers);
    random_set.assign(ids.begin(), ids.end());
  }
  Cluster bcc_set;
  {
    const double target = grid.bandwidth.percentile(70.0);
    for (std::size_t cls = *sys.classes().class_for_bandwidth(
             std::min(target, sys.classes().bandwidth_at(
                                  sys.classes().size() - 1))) +
                           1;
         cls-- > 0;) {
      const QueryResult r =
          sys.query(QueryRequest::at_class(submitter, workers, cls));
      if (r.found()) {
        bcc_set = r.cluster;
        break;
      }
    }
  }
  Cluster tight_set;  // centralized min-diameter set, for reference
  {
    std::vector<NodeId> universe(n);
    for (NodeId i = 0; i < n; ++i) universe[i] = i;
    if (auto c = tightest_cluster(sys.predicted(), universe, workers)) {
      tight_set = *c;
    }
  }

  std::printf("%-24s | makespan | bottleneck link\n", "worker set");
  std::printf("-------------------------+----------+-----------------------\n");
  auto report = [&](const char* name, const Cluster& set) {
    if (set.empty()) {
      std::printf("%-24s | (no set found)\n", name);
      return;
    }
    const Assignment a = round_robin_assign(wf, set);
    const double makespan = estimate_makespan(wf, a, grid.bandwidth);
    const Bottleneck b = find_bottleneck(wf, a, grid.bandwidth);
    std::printf("%-24s | %6.0f s | %zu<->%zu (%.1f Mbps, %.0f s)\n", name,
                makespan, b.a, b.b, grid.bandwidth.at(b.a, b.b), b.seconds);
  };
  report("random volunteers", random_set);
  report("bcc decentralized query", bcc_set);
  report("bcc tightest (central)", tight_set);

  std::filesystem::remove(snapshot);
  return 0;
}
