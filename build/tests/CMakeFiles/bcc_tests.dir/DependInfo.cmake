
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/accuracy_test.cpp" "tests/CMakeFiles/bcc_tests.dir/accuracy_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/accuracy_test.cpp.o.d"
  "/root/repo/tests/aggregation_test.cpp" "tests/CMakeFiles/bcc_tests.dir/aggregation_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/aggregation_test.cpp.o.d"
  "/root/repo/tests/anchor_tree_test.cpp" "tests/CMakeFiles/bcc_tests.dir/anchor_tree_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/anchor_tree_test.cpp.o.d"
  "/root/repo/tests/async_overlay_test.cpp" "tests/CMakeFiles/bcc_tests.dir/async_overlay_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/async_overlay_test.cpp.o.d"
  "/root/repo/tests/bandwidth_classes_test.cpp" "tests/CMakeFiles/bcc_tests.dir/bandwidth_classes_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/bandwidth_classes_test.cpp.o.d"
  "/root/repo/tests/bandwidth_test.cpp" "tests/CMakeFiles/bcc_tests.dir/bandwidth_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/bandwidth_test.cpp.o.d"
  "/root/repo/tests/bootstrap_test.cpp" "tests/CMakeFiles/bcc_tests.dir/bootstrap_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/bootstrap_test.cpp.o.d"
  "/root/repo/tests/completion_test.cpp" "tests/CMakeFiles/bcc_tests.dir/completion_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/completion_test.cpp.o.d"
  "/root/repo/tests/csv_test.cpp" "tests/CMakeFiles/bcc_tests.dir/csv_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/csv_test.cpp.o.d"
  "/root/repo/tests/dataset_io_test.cpp" "tests/CMakeFiles/bcc_tests.dir/dataset_io_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/dataset_io_test.cpp.o.d"
  "/root/repo/tests/distance_label_test.cpp" "tests/CMakeFiles/bcc_tests.dir/distance_label_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/distance_label_test.cpp.o.d"
  "/root/repo/tests/distance_matrix_test.cpp" "tests/CMakeFiles/bcc_tests.dir/distance_matrix_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/distance_matrix_test.cpp.o.d"
  "/root/repo/tests/dynamics_test.cpp" "tests/CMakeFiles/bcc_tests.dir/dynamics_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/dynamics_test.cpp.o.d"
  "/root/repo/tests/embedder_test.cpp" "tests/CMakeFiles/bcc_tests.dir/embedder_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/embedder_test.cpp.o.d"
  "/root/repo/tests/end_to_end_sweep_test.cpp" "tests/CMakeFiles/bcc_tests.dir/end_to_end_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/end_to_end_sweep_test.cpp.o.d"
  "/root/repo/tests/event_engine_test.cpp" "tests/CMakeFiles/bcc_tests.dir/event_engine_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/event_engine_test.cpp.o.d"
  "/root/repo/tests/exhaustive_baseline_test.cpp" "tests/CMakeFiles/bcc_tests.dir/exhaustive_baseline_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/exhaustive_baseline_test.cpp.o.d"
  "/root/repo/tests/exp_common_test.cpp" "tests/CMakeFiles/bcc_tests.dir/exp_common_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/exp_common_test.cpp.o.d"
  "/root/repo/tests/find_cluster_test.cpp" "tests/CMakeFiles/bcc_tests.dir/find_cluster_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/find_cluster_test.cpp.o.d"
  "/root/repo/tests/four_point_test.cpp" "tests/CMakeFiles/bcc_tests.dir/four_point_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/four_point_test.cpp.o.d"
  "/root/repo/tests/fuzz_test.cpp" "tests/CMakeFiles/bcc_tests.dir/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/fuzz_test.cpp.o.d"
  "/root/repo/tests/hopcroft_karp_test.cpp" "tests/CMakeFiles/bcc_tests.dir/hopcroft_karp_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/hopcroft_karp_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/bcc_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/kdiameter_test.cpp" "tests/CMakeFiles/bcc_tests.dir/kdiameter_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/kdiameter_test.cpp.o.d"
  "/root/repo/tests/latency_synth_test.cpp" "tests/CMakeFiles/bcc_tests.dir/latency_synth_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/latency_synth_test.cpp.o.d"
  "/root/repo/tests/maintenance_test.cpp" "tests/CMakeFiles/bcc_tests.dir/maintenance_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/maintenance_test.cpp.o.d"
  "/root/repo/tests/node_search_test.cpp" "tests/CMakeFiles/bcc_tests.dir/node_search_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/node_search_test.cpp.o.d"
  "/root/repo/tests/options_test.cpp" "tests/CMakeFiles/bcc_tests.dir/options_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/options_test.cpp.o.d"
  "/root/repo/tests/overlay_node_test.cpp" "tests/CMakeFiles/bcc_tests.dir/overlay_node_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/overlay_node_test.cpp.o.d"
  "/root/repo/tests/partition_test.cpp" "tests/CMakeFiles/bcc_tests.dir/partition_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/partition_test.cpp.o.d"
  "/root/repo/tests/planetlab_synth_test.cpp" "tests/CMakeFiles/bcc_tests.dir/planetlab_synth_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/planetlab_synth_test.cpp.o.d"
  "/root/repo/tests/prediction_tree_test.cpp" "tests/CMakeFiles/bcc_tests.dir/prediction_tree_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/prediction_tree_test.cpp.o.d"
  "/root/repo/tests/query_test.cpp" "tests/CMakeFiles/bcc_tests.dir/query_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/query_test.cpp.o.d"
  "/root/repo/tests/rng_test.cpp" "tests/CMakeFiles/bcc_tests.dir/rng_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/rng_test.cpp.o.d"
  "/root/repo/tests/scheduler_test.cpp" "tests/CMakeFiles/bcc_tests.dir/scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/scheduler_test.cpp.o.d"
  "/root/repo/tests/serialization_test.cpp" "tests/CMakeFiles/bcc_tests.dir/serialization_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/serialization_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/bcc_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/subsets_test.cpp" "tests/CMakeFiles/bcc_tests.dir/subsets_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/subsets_test.cpp.o.d"
  "/root/repo/tests/summary_test.cpp" "tests/CMakeFiles/bcc_tests.dir/summary_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/summary_test.cpp.o.d"
  "/root/repo/tests/system_test.cpp" "tests/CMakeFiles/bcc_tests.dir/system_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/system_test.cpp.o.d"
  "/root/repo/tests/table_test.cpp" "tests/CMakeFiles/bcc_tests.dir/table_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/table_test.cpp.o.d"
  "/root/repo/tests/topology_gen_test.cpp" "tests/CMakeFiles/bcc_tests.dir/topology_gen_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/topology_gen_test.cpp.o.d"
  "/root/repo/tests/umbrella_test.cpp" "tests/CMakeFiles/bcc_tests.dir/umbrella_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/umbrella_test.cpp.o.d"
  "/root/repo/tests/vivaldi_test.cpp" "tests/CMakeFiles/bcc_tests.dir/vivaldi_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/vivaldi_test.cpp.o.d"
  "/root/repo/tests/weighted_tree_test.cpp" "tests/CMakeFiles/bcc_tests.dir/weighted_tree_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/weighted_tree_test.cpp.o.d"
  "/root/repo/tests/workflow_test.cpp" "tests/CMakeFiles/bcc_tests.dir/workflow_test.cpp.o" "gcc" "tests/CMakeFiles/bcc_tests.dir/workflow_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bcc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bcc_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bcc_vivaldi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bcc_euclid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bcc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bcc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bcc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bcc_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bcc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bcc_metric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bcc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
