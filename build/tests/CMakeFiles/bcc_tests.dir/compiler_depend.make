# Empty compiler generated dependencies file for bcc_tests.
# This may be replaced when dependencies are built.
