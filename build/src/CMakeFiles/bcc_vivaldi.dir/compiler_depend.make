# Empty compiler generated dependencies file for bcc_vivaldi.
# This may be replaced when dependencies are built.
