file(REMOVE_RECURSE
  "CMakeFiles/bcc_vivaldi.dir/vivaldi/vivaldi.cpp.o"
  "CMakeFiles/bcc_vivaldi.dir/vivaldi/vivaldi.cpp.o.d"
  "libbcc_vivaldi.a"
  "libbcc_vivaldi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcc_vivaldi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
