file(REMOVE_RECURSE
  "libbcc_vivaldi.a"
)
