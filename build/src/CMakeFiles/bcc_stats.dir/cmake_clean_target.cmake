file(REMOVE_RECURSE
  "libbcc_stats.a"
)
