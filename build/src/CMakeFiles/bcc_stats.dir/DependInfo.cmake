
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/accuracy.cpp" "src/CMakeFiles/bcc_stats.dir/stats/accuracy.cpp.o" "gcc" "src/CMakeFiles/bcc_stats.dir/stats/accuracy.cpp.o.d"
  "/root/repo/src/stats/bootstrap.cpp" "src/CMakeFiles/bcc_stats.dir/stats/bootstrap.cpp.o" "gcc" "src/CMakeFiles/bcc_stats.dir/stats/bootstrap.cpp.o.d"
  "/root/repo/src/stats/summary.cpp" "src/CMakeFiles/bcc_stats.dir/stats/summary.cpp.o" "gcc" "src/CMakeFiles/bcc_stats.dir/stats/summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bcc_metric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bcc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
