file(REMOVE_RECURSE
  "CMakeFiles/bcc_stats.dir/stats/accuracy.cpp.o"
  "CMakeFiles/bcc_stats.dir/stats/accuracy.cpp.o.d"
  "CMakeFiles/bcc_stats.dir/stats/bootstrap.cpp.o"
  "CMakeFiles/bcc_stats.dir/stats/bootstrap.cpp.o.d"
  "CMakeFiles/bcc_stats.dir/stats/summary.cpp.o"
  "CMakeFiles/bcc_stats.dir/stats/summary.cpp.o.d"
  "libbcc_stats.a"
  "libbcc_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcc_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
