# Empty compiler generated dependencies file for bcc_stats.
# This may be replaced when dependencies are built.
