
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tree/anchor_tree.cpp" "src/CMakeFiles/bcc_tree.dir/tree/anchor_tree.cpp.o" "gcc" "src/CMakeFiles/bcc_tree.dir/tree/anchor_tree.cpp.o.d"
  "/root/repo/src/tree/distance_label.cpp" "src/CMakeFiles/bcc_tree.dir/tree/distance_label.cpp.o" "gcc" "src/CMakeFiles/bcc_tree.dir/tree/distance_label.cpp.o.d"
  "/root/repo/src/tree/embedder.cpp" "src/CMakeFiles/bcc_tree.dir/tree/embedder.cpp.o" "gcc" "src/CMakeFiles/bcc_tree.dir/tree/embedder.cpp.o.d"
  "/root/repo/src/tree/maintenance.cpp" "src/CMakeFiles/bcc_tree.dir/tree/maintenance.cpp.o" "gcc" "src/CMakeFiles/bcc_tree.dir/tree/maintenance.cpp.o.d"
  "/root/repo/src/tree/prediction_tree.cpp" "src/CMakeFiles/bcc_tree.dir/tree/prediction_tree.cpp.o" "gcc" "src/CMakeFiles/bcc_tree.dir/tree/prediction_tree.cpp.o.d"
  "/root/repo/src/tree/serialization.cpp" "src/CMakeFiles/bcc_tree.dir/tree/serialization.cpp.o" "gcc" "src/CMakeFiles/bcc_tree.dir/tree/serialization.cpp.o.d"
  "/root/repo/src/tree/weighted_tree.cpp" "src/CMakeFiles/bcc_tree.dir/tree/weighted_tree.cpp.o" "gcc" "src/CMakeFiles/bcc_tree.dir/tree/weighted_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bcc_metric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bcc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
