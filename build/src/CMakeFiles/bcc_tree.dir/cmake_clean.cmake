file(REMOVE_RECURSE
  "CMakeFiles/bcc_tree.dir/tree/anchor_tree.cpp.o"
  "CMakeFiles/bcc_tree.dir/tree/anchor_tree.cpp.o.d"
  "CMakeFiles/bcc_tree.dir/tree/distance_label.cpp.o"
  "CMakeFiles/bcc_tree.dir/tree/distance_label.cpp.o.d"
  "CMakeFiles/bcc_tree.dir/tree/embedder.cpp.o"
  "CMakeFiles/bcc_tree.dir/tree/embedder.cpp.o.d"
  "CMakeFiles/bcc_tree.dir/tree/maintenance.cpp.o"
  "CMakeFiles/bcc_tree.dir/tree/maintenance.cpp.o.d"
  "CMakeFiles/bcc_tree.dir/tree/prediction_tree.cpp.o"
  "CMakeFiles/bcc_tree.dir/tree/prediction_tree.cpp.o.d"
  "CMakeFiles/bcc_tree.dir/tree/serialization.cpp.o"
  "CMakeFiles/bcc_tree.dir/tree/serialization.cpp.o.d"
  "CMakeFiles/bcc_tree.dir/tree/weighted_tree.cpp.o"
  "CMakeFiles/bcc_tree.dir/tree/weighted_tree.cpp.o.d"
  "libbcc_tree.a"
  "libbcc_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcc_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
