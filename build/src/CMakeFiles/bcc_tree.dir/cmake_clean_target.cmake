file(REMOVE_RECURSE
  "libbcc_tree.a"
)
