# Empty dependencies file for bcc_tree.
# This may be replaced when dependencies are built.
