file(REMOVE_RECURSE
  "libbcc_sim.a"
)
