file(REMOVE_RECURSE
  "CMakeFiles/bcc_sim.dir/sim/engine.cpp.o"
  "CMakeFiles/bcc_sim.dir/sim/engine.cpp.o.d"
  "CMakeFiles/bcc_sim.dir/sim/event_engine.cpp.o"
  "CMakeFiles/bcc_sim.dir/sim/event_engine.cpp.o.d"
  "CMakeFiles/bcc_sim.dir/sim/metrics.cpp.o"
  "CMakeFiles/bcc_sim.dir/sim/metrics.cpp.o.d"
  "libbcc_sim.a"
  "libbcc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
