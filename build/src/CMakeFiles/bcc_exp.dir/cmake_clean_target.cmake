file(REMOVE_RECURSE
  "libbcc_exp.a"
)
