# Empty dependencies file for bcc_exp.
# This may be replaced when dependencies are built.
