file(REMOVE_RECURSE
  "CMakeFiles/bcc_exp.dir/exp/common.cpp.o"
  "CMakeFiles/bcc_exp.dir/exp/common.cpp.o.d"
  "CMakeFiles/bcc_exp.dir/exp/fig3.cpp.o"
  "CMakeFiles/bcc_exp.dir/exp/fig3.cpp.o.d"
  "CMakeFiles/bcc_exp.dir/exp/fig4.cpp.o"
  "CMakeFiles/bcc_exp.dir/exp/fig4.cpp.o.d"
  "CMakeFiles/bcc_exp.dir/exp/fig5.cpp.o"
  "CMakeFiles/bcc_exp.dir/exp/fig5.cpp.o.d"
  "CMakeFiles/bcc_exp.dir/exp/fig6.cpp.o"
  "CMakeFiles/bcc_exp.dir/exp/fig6.cpp.o.d"
  "libbcc_exp.a"
  "libbcc_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcc_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
