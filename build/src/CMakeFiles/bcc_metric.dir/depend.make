# Empty dependencies file for bcc_metric.
# This may be replaced when dependencies are built.
