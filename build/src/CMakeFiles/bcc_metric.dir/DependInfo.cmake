
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metric/bandwidth.cpp" "src/CMakeFiles/bcc_metric.dir/metric/bandwidth.cpp.o" "gcc" "src/CMakeFiles/bcc_metric.dir/metric/bandwidth.cpp.o.d"
  "/root/repo/src/metric/distance_matrix.cpp" "src/CMakeFiles/bcc_metric.dir/metric/distance_matrix.cpp.o" "gcc" "src/CMakeFiles/bcc_metric.dir/metric/distance_matrix.cpp.o.d"
  "/root/repo/src/metric/four_point.cpp" "src/CMakeFiles/bcc_metric.dir/metric/four_point.cpp.o" "gcc" "src/CMakeFiles/bcc_metric.dir/metric/four_point.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bcc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
