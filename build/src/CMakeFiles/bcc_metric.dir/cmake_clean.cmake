file(REMOVE_RECURSE
  "CMakeFiles/bcc_metric.dir/metric/bandwidth.cpp.o"
  "CMakeFiles/bcc_metric.dir/metric/bandwidth.cpp.o.d"
  "CMakeFiles/bcc_metric.dir/metric/distance_matrix.cpp.o"
  "CMakeFiles/bcc_metric.dir/metric/distance_matrix.cpp.o.d"
  "CMakeFiles/bcc_metric.dir/metric/four_point.cpp.o"
  "CMakeFiles/bcc_metric.dir/metric/four_point.cpp.o.d"
  "libbcc_metric.a"
  "libbcc_metric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcc_metric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
