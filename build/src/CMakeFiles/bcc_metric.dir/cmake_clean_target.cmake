file(REMOVE_RECURSE
  "libbcc_metric.a"
)
