
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/completion.cpp" "src/CMakeFiles/bcc_data.dir/data/completion.cpp.o" "gcc" "src/CMakeFiles/bcc_data.dir/data/completion.cpp.o.d"
  "/root/repo/src/data/dataset_io.cpp" "src/CMakeFiles/bcc_data.dir/data/dataset_io.cpp.o" "gcc" "src/CMakeFiles/bcc_data.dir/data/dataset_io.cpp.o.d"
  "/root/repo/src/data/dynamics.cpp" "src/CMakeFiles/bcc_data.dir/data/dynamics.cpp.o" "gcc" "src/CMakeFiles/bcc_data.dir/data/dynamics.cpp.o.d"
  "/root/repo/src/data/latency_synth.cpp" "src/CMakeFiles/bcc_data.dir/data/latency_synth.cpp.o" "gcc" "src/CMakeFiles/bcc_data.dir/data/latency_synth.cpp.o.d"
  "/root/repo/src/data/planetlab_synth.cpp" "src/CMakeFiles/bcc_data.dir/data/planetlab_synth.cpp.o" "gcc" "src/CMakeFiles/bcc_data.dir/data/planetlab_synth.cpp.o.d"
  "/root/repo/src/data/subsets.cpp" "src/CMakeFiles/bcc_data.dir/data/subsets.cpp.o" "gcc" "src/CMakeFiles/bcc_data.dir/data/subsets.cpp.o.d"
  "/root/repo/src/data/topology_gen.cpp" "src/CMakeFiles/bcc_data.dir/data/topology_gen.cpp.o" "gcc" "src/CMakeFiles/bcc_data.dir/data/topology_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bcc_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bcc_metric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bcc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
