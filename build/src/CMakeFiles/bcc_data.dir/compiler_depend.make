# Empty compiler generated dependencies file for bcc_data.
# This may be replaced when dependencies are built.
