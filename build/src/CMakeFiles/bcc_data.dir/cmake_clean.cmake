file(REMOVE_RECURSE
  "CMakeFiles/bcc_data.dir/data/completion.cpp.o"
  "CMakeFiles/bcc_data.dir/data/completion.cpp.o.d"
  "CMakeFiles/bcc_data.dir/data/dataset_io.cpp.o"
  "CMakeFiles/bcc_data.dir/data/dataset_io.cpp.o.d"
  "CMakeFiles/bcc_data.dir/data/dynamics.cpp.o"
  "CMakeFiles/bcc_data.dir/data/dynamics.cpp.o.d"
  "CMakeFiles/bcc_data.dir/data/latency_synth.cpp.o"
  "CMakeFiles/bcc_data.dir/data/latency_synth.cpp.o.d"
  "CMakeFiles/bcc_data.dir/data/planetlab_synth.cpp.o"
  "CMakeFiles/bcc_data.dir/data/planetlab_synth.cpp.o.d"
  "CMakeFiles/bcc_data.dir/data/subsets.cpp.o"
  "CMakeFiles/bcc_data.dir/data/subsets.cpp.o.d"
  "CMakeFiles/bcc_data.dir/data/topology_gen.cpp.o"
  "CMakeFiles/bcc_data.dir/data/topology_gen.cpp.o.d"
  "libbcc_data.a"
  "libbcc_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcc_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
