file(REMOVE_RECURSE
  "libbcc_data.a"
)
