file(REMOVE_RECURSE
  "CMakeFiles/bcc_workload.dir/workload/scheduler.cpp.o"
  "CMakeFiles/bcc_workload.dir/workload/scheduler.cpp.o.d"
  "CMakeFiles/bcc_workload.dir/workload/workflow.cpp.o"
  "CMakeFiles/bcc_workload.dir/workload/workflow.cpp.o.d"
  "libbcc_workload.a"
  "libbcc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
