# Empty compiler generated dependencies file for bcc_workload.
# This may be replaced when dependencies are built.
