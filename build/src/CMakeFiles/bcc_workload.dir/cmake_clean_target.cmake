file(REMOVE_RECURSE
  "libbcc_workload.a"
)
