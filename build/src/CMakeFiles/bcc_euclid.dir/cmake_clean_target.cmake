file(REMOVE_RECURSE
  "libbcc_euclid.a"
)
