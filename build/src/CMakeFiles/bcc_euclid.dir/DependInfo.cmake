
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/euclid/hopcroft_karp.cpp" "src/CMakeFiles/bcc_euclid.dir/euclid/hopcroft_karp.cpp.o" "gcc" "src/CMakeFiles/bcc_euclid.dir/euclid/hopcroft_karp.cpp.o.d"
  "/root/repo/src/euclid/kdiameter.cpp" "src/CMakeFiles/bcc_euclid.dir/euclid/kdiameter.cpp.o" "gcc" "src/CMakeFiles/bcc_euclid.dir/euclid/kdiameter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bcc_metric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bcc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
