# Empty dependencies file for bcc_euclid.
# This may be replaced when dependencies are built.
