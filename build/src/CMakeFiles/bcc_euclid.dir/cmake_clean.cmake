file(REMOVE_RECURSE
  "CMakeFiles/bcc_euclid.dir/euclid/hopcroft_karp.cpp.o"
  "CMakeFiles/bcc_euclid.dir/euclid/hopcroft_karp.cpp.o.d"
  "CMakeFiles/bcc_euclid.dir/euclid/kdiameter.cpp.o"
  "CMakeFiles/bcc_euclid.dir/euclid/kdiameter.cpp.o.d"
  "libbcc_euclid.a"
  "libbcc_euclid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcc_euclid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
