file(REMOVE_RECURSE
  "libbcc_common.a"
)
