# Empty compiler generated dependencies file for bcc_common.
# This may be replaced when dependencies are built.
