file(REMOVE_RECURSE
  "CMakeFiles/bcc_common.dir/common/csv.cpp.o"
  "CMakeFiles/bcc_common.dir/common/csv.cpp.o.d"
  "CMakeFiles/bcc_common.dir/common/options.cpp.o"
  "CMakeFiles/bcc_common.dir/common/options.cpp.o.d"
  "CMakeFiles/bcc_common.dir/common/rng.cpp.o"
  "CMakeFiles/bcc_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/bcc_common.dir/common/table.cpp.o"
  "CMakeFiles/bcc_common.dir/common/table.cpp.o.d"
  "libbcc_common.a"
  "libbcc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
