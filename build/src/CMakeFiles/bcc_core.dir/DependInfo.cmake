
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregation.cpp" "src/CMakeFiles/bcc_core.dir/core/aggregation.cpp.o" "gcc" "src/CMakeFiles/bcc_core.dir/core/aggregation.cpp.o.d"
  "/root/repo/src/core/async_overlay.cpp" "src/CMakeFiles/bcc_core.dir/core/async_overlay.cpp.o" "gcc" "src/CMakeFiles/bcc_core.dir/core/async_overlay.cpp.o.d"
  "/root/repo/src/core/exhaustive_baseline.cpp" "src/CMakeFiles/bcc_core.dir/core/exhaustive_baseline.cpp.o" "gcc" "src/CMakeFiles/bcc_core.dir/core/exhaustive_baseline.cpp.o.d"
  "/root/repo/src/core/find_cluster.cpp" "src/CMakeFiles/bcc_core.dir/core/find_cluster.cpp.o" "gcc" "src/CMakeFiles/bcc_core.dir/core/find_cluster.cpp.o.d"
  "/root/repo/src/core/node_search.cpp" "src/CMakeFiles/bcc_core.dir/core/node_search.cpp.o" "gcc" "src/CMakeFiles/bcc_core.dir/core/node_search.cpp.o.d"
  "/root/repo/src/core/overlay_node.cpp" "src/CMakeFiles/bcc_core.dir/core/overlay_node.cpp.o" "gcc" "src/CMakeFiles/bcc_core.dir/core/overlay_node.cpp.o.d"
  "/root/repo/src/core/partition.cpp" "src/CMakeFiles/bcc_core.dir/core/partition.cpp.o" "gcc" "src/CMakeFiles/bcc_core.dir/core/partition.cpp.o.d"
  "/root/repo/src/core/query.cpp" "src/CMakeFiles/bcc_core.dir/core/query.cpp.o" "gcc" "src/CMakeFiles/bcc_core.dir/core/query.cpp.o.d"
  "/root/repo/src/core/system.cpp" "src/CMakeFiles/bcc_core.dir/core/system.cpp.o" "gcc" "src/CMakeFiles/bcc_core.dir/core/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bcc_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bcc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bcc_metric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bcc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
