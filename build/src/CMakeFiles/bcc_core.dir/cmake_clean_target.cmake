file(REMOVE_RECURSE
  "libbcc_core.a"
)
