file(REMOVE_RECURSE
  "CMakeFiles/bcc_core.dir/core/aggregation.cpp.o"
  "CMakeFiles/bcc_core.dir/core/aggregation.cpp.o.d"
  "CMakeFiles/bcc_core.dir/core/async_overlay.cpp.o"
  "CMakeFiles/bcc_core.dir/core/async_overlay.cpp.o.d"
  "CMakeFiles/bcc_core.dir/core/exhaustive_baseline.cpp.o"
  "CMakeFiles/bcc_core.dir/core/exhaustive_baseline.cpp.o.d"
  "CMakeFiles/bcc_core.dir/core/find_cluster.cpp.o"
  "CMakeFiles/bcc_core.dir/core/find_cluster.cpp.o.d"
  "CMakeFiles/bcc_core.dir/core/node_search.cpp.o"
  "CMakeFiles/bcc_core.dir/core/node_search.cpp.o.d"
  "CMakeFiles/bcc_core.dir/core/overlay_node.cpp.o"
  "CMakeFiles/bcc_core.dir/core/overlay_node.cpp.o.d"
  "CMakeFiles/bcc_core.dir/core/partition.cpp.o"
  "CMakeFiles/bcc_core.dir/core/partition.cpp.o.d"
  "CMakeFiles/bcc_core.dir/core/query.cpp.o"
  "CMakeFiles/bcc_core.dir/core/query.cpp.o.d"
  "CMakeFiles/bcc_core.dir/core/system.cpp.o"
  "CMakeFiles/bcc_core.dir/core/system.cpp.o.d"
  "libbcc_core.a"
  "libbcc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
