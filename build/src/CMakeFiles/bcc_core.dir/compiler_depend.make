# Empty compiler generated dependencies file for bcc_core.
# This may be replaced when dependencies are built.
