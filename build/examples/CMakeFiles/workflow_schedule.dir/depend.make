# Empty dependencies file for workflow_schedule.
# This may be replaced when dependencies are built.
