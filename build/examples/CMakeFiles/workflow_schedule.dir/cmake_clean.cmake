file(REMOVE_RECURSE
  "CMakeFiles/workflow_schedule.dir/workflow_schedule.cpp.o"
  "CMakeFiles/workflow_schedule.dir/workflow_schedule.cpp.o.d"
  "workflow_schedule"
  "workflow_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workflow_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
