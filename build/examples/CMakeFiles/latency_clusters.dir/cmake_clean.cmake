file(REMOVE_RECURSE
  "CMakeFiles/latency_clusters.dir/latency_clusters.cpp.o"
  "CMakeFiles/latency_clusters.dir/latency_clusters.cpp.o.d"
  "latency_clusters"
  "latency_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
