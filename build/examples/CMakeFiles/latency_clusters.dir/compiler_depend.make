# Empty compiler generated dependencies file for latency_clusters.
# This may be replaced when dependencies are built.
