# Empty dependencies file for cdn_distribution.
# This may be replaced when dependencies are built.
