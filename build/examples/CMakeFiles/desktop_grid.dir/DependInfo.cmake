
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/desktop_grid.cpp" "examples/CMakeFiles/desktop_grid.dir/desktop_grid.cpp.o" "gcc" "examples/CMakeFiles/desktop_grid.dir/desktop_grid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bcc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bcc_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bcc_vivaldi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bcc_euclid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bcc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bcc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bcc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bcc_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bcc_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bcc_metric.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bcc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
