file(REMOVE_RECURSE
  "CMakeFiles/desktop_grid.dir/desktop_grid.cpp.o"
  "CMakeFiles/desktop_grid.dir/desktop_grid.cpp.o.d"
  "desktop_grid"
  "desktop_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/desktop_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
