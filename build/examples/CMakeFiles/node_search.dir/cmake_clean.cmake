file(REMOVE_RECURSE
  "CMakeFiles/node_search.dir/node_search.cpp.o"
  "CMakeFiles/node_search.dir/node_search.cpp.o.d"
  "node_search"
  "node_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
