# Empty dependencies file for node_search.
# This may be replaced when dependencies are built.
