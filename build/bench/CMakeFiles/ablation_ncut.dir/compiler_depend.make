# Empty compiler generated dependencies file for ablation_ncut.
# This may be replaced when dependencies are built.
