file(REMOVE_RECURSE
  "CMakeFiles/ablation_ncut.dir/ablation_ncut.cpp.o"
  "CMakeFiles/ablation_ncut.dir/ablation_ncut.cpp.o.d"
  "ablation_ncut"
  "ablation_ncut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ncut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
