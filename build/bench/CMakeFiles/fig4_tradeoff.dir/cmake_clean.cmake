file(REMOVE_RECURSE
  "CMakeFiles/fig4_tradeoff.dir/fig4_tradeoff.cpp.o"
  "CMakeFiles/fig4_tradeoff.dir/fig4_tradeoff.cpp.o.d"
  "fig4_tradeoff"
  "fig4_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
