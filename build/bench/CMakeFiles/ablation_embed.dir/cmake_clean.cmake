file(REMOVE_RECURSE
  "CMakeFiles/ablation_embed.dir/ablation_embed.cpp.o"
  "CMakeFiles/ablation_embed.dir/ablation_embed.cpp.o.d"
  "ablation_embed"
  "ablation_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
