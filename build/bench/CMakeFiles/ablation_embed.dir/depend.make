# Empty dependencies file for ablation_embed.
# This may be replaced when dependencies are built.
