file(REMOVE_RECURSE
  "CMakeFiles/ablation_sword.dir/ablation_sword.cpp.o"
  "CMakeFiles/ablation_sword.dir/ablation_sword.cpp.o.d"
  "ablation_sword"
  "ablation_sword.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sword.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
