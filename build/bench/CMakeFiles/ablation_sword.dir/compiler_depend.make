# Empty compiler generated dependencies file for ablation_sword.
# This may be replaced when dependencies are built.
