file(REMOVE_RECURSE
  "CMakeFiles/fig5_treeness.dir/fig5_treeness.cpp.o"
  "CMakeFiles/fig5_treeness.dir/fig5_treeness.cpp.o.d"
  "fig5_treeness"
  "fig5_treeness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_treeness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
