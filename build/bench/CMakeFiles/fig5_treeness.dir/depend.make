# Empty dependencies file for fig5_treeness.
# This may be replaced when dependencies are built.
