file(REMOVE_RECURSE
  "CMakeFiles/ablation_classes.dir/ablation_classes.cpp.o"
  "CMakeFiles/ablation_classes.dir/ablation_classes.cpp.o.d"
  "ablation_classes"
  "ablation_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
