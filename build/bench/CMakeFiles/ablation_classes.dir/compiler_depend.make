# Empty compiler generated dependencies file for ablation_classes.
# This may be replaced when dependencies are built.
