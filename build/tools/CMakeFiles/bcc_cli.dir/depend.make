# Empty dependencies file for bcc_cli.
# This may be replaced when dependencies are built.
