file(REMOVE_RECURSE
  "CMakeFiles/bcc_cli.dir/bcc_cli.cpp.o"
  "CMakeFiles/bcc_cli.dir/bcc_cli.cpp.o.d"
  "bcc"
  "bcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
