#!/usr/bin/env bash
# Sanitizer ctest jobs (the BCC_SANITIZE CMake option wired to ctest):
#
#   * ThreadSanitizer over the serving-layer + chaos + observability tests —
#     the QueryService concurrency test races submit_batch against refresh()
#     snapshot swaps, the EpochPtr storm test pins readers across publish()
#     reclamation (the proof a reader never touches a freed snapshot), the
#     overload suite races shedding against admission bookkeeping, the chaos
#     suite swaps degraded snapshots mid-serve, the QueryStats seqlock test
#     tears at snapshots under concurrent record()s, and the obs suite
#     hammers the striped counters / histogram buckets / tracer ring from
#     many threads — exactly the code TSan exists for; the ObsProfiler and
#     QueryProfile tests run the SIGPROF sampler and the explain stage
#     clocks under TSan, so a handler touching anything beyond its lock-free
#     slot ring (and the exemplar stripes racing record against snapshot)
#     would light up here; the Transport/Net
#     tests pump two TcpTransports from separate threads while EventEngine
#     timer cancellation races transport-driven retries (the shared surface
#     is the global bcc.net.* instruments and the frame codec);
#   * AddressSanitizer + UBSan over the full suite, chaos + obs suites
#     included (fault injection exercises cancellation/retry paths that
#     juggle timer lifetimes — prime use-after-free territory).
#
# The chaos sweeps honor BCC_CHAOS_SEEDS / BCC_CHAOS_N (see
# tests/chaos_test.cpp); nightly jobs export larger values before invoking
# this script, e.g. BCC_CHAOS_SEEDS=10 BCC_CHAOS_N=24 tools/sanitize.sh.
# A plain (unsanitized) chaos pass is just `ctest -L chaos` in any build dir.
#
# Usage: tools/sanitize.sh [tsan|asan|all]   (default: all)
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-all}"
jobs="$(nproc)"

run_tsan() {
  cmake -B build-tsan -S . -DBCC_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j "${jobs}" --target bcc_tests bcc_chaos_tests bcc_obs_tests bcc_transport_tests bcc_cli
  ctest --test-dir build-tsan \
        -R 'QueryService|QueryStatusApi|QueryStats|QueryShard|QueryProfile|Epoch|Chaos|Obs|Transport|Net' \
        --output-on-failure -j "${jobs}"
}

run_asan() {
  cmake -B build-asan -S . -DBCC_SANITIZE=address,undefined -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-asan -j "${jobs}" --target bcc_tests bcc_chaos_tests bcc_obs_tests bcc_transport_tests bcc_cli
  ctest --test-dir build-asan --output-on-failure -j "${jobs}"
}

case "${mode}" in
  tsan) run_tsan ;;
  asan) run_asan ;;
  all) run_tsan; run_asan ;;
  *) echo "usage: $0 [tsan|asan|all]" >&2; exit 2 ;;
esac
