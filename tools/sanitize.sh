#!/usr/bin/env bash
# Sanitizer ctest jobs (the BCC_SANITIZE CMake option wired to ctest):
#
#   * ThreadSanitizer over the serving-layer tests — the QueryService
#     concurrency test races submit_batch against refresh() snapshot swaps,
#     which is exactly the code TSan exists for;
#   * AddressSanitizer + UBSan over the full suite.
#
# Usage: tools/sanitize.sh [tsan|asan|all]   (default: all)
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-all}"
jobs="$(nproc)"

run_tsan() {
  cmake -B build-tsan -S . -DBCC_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j "${jobs}" --target bcc_tests
  ctest --test-dir build-tsan -R 'QueryService|QueryStatusApi' --output-on-failure -j "${jobs}"
}

run_asan() {
  cmake -B build-asan -S . -DBCC_SANITIZE=address,undefined -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-asan -j "${jobs}" --target bcc_tests
  ctest --test-dir build-asan --output-on-failure -j "${jobs}"
}

case "${mode}" in
  tsan) run_tsan ;;
  asan) run_asan ;;
  all) run_tsan; run_asan ;;
  *) echo "usage: $0 [tsan|asan|all]" >&2; exit 2 ;;
esac
