// proc_supervisor — CLI front end for the multi-process chaos harness
// (net/supervisor.h). Spawns an N-process `bcc node` cluster over real
// sockets and runs one named scenario:
//
//   proc_supervisor --bcc PATH/TO/bcc --scenario converge|kill-rejoin|
//                   partition-heal|stall-resume|drain|kill-collect|
//                   overhead|all
//                   [--nodes N --seed S --deadline SEC --metrics-dir DIR
//                    --flight-dir DIR --telemetry-out DIR -v]
//
// Exit 0 when the scenario's assertions hold (survivors answered, exact
// sync fixpoint reached, drains exited 0, recovered flight spans causally
// linked, ...), 1 with a message otherwise. Scenarios that need a scratch
// directory (kill-collect needs --flight-dir, overhead needs
// --metrics-dir) provision one under TMPDIR when the flag is omitted.
// The transport_chaos_test gtest runs these same scenarios; this binary is
// the interactive/demo entry point (see README "multi-process quickstart").
#include <stdlib.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/options.h"
#include "net/supervisor.h"

namespace {

/// mkdtemp under TMPDIR; "" on failure.
std::string scratch_dir(const char* tag) {
  const char* base = ::getenv("TMPDIR");
  std::string tmpl = std::string(base != nullptr ? base : "/tmp") +
                     "/bcc_" + tag + "_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) return "";
  return std::string(buf.data());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bcc;
  Options opts("proc_supervisor", "multi-process chaos harness driver");
  auto& bcc_bin = opts.add_string("bcc", "", "path to the bcc binary");
  auto& scenario = opts.add_string("scenario", "converge",
                                   "scenario name, or 'all'");
  auto& nodes = opts.add_int("nodes", 5, "cluster size (process count)");
  auto& seed = opts.add_int("seed", 1, "shared world seed");
  auto& deadline = opts.add_double("deadline", 45.0,
                                   "seconds allowed to reach the fixpoint");
  auto& metrics_dir = opts.add_string(
      "metrics-dir", "", "directory for per-node metrics flushes");
  auto& flight_dir = opts.add_string(
      "flight-dir", "",
      "directory for per-node crash flight rings (enables telemetry "
      "scenarios; auto-provisioned for kill-collect when omitted)");
  auto& telemetry_out = opts.add_string(
      "telemetry-out", "",
      "directory for merged fleet_trace.json / fleet_metrics.json artifacts");
  auto& verbose = opts.add_bool("verbose", false, "narrate child lifecycle");
  opts.parse(argc, argv);
  if (bcc_bin.empty()) {
    std::fprintf(stderr, "proc_supervisor: --bcc PATH is required\n");
    return 1;
  }

  net::SupervisorOptions so;
  so.n = static_cast<std::size_t>(nodes);
  so.world_seed = static_cast<std::uint64_t>(seed);
  so.bcc_bin = bcc_bin;
  so.converge_deadline = deadline;
  so.metrics_dir = metrics_dir;
  so.flight_dir = flight_dir;
  so.telemetry_out = telemetry_out;
  so.verbose = verbose;

  std::vector<std::string> names;
  if (scenario == "all") {
    names = {"converge", "kill-rejoin", "partition-heal", "stall-resume",
             "drain", "kill-collect"};
  } else {
    names = {scenario};
  }
  for (const std::string& name : names) {
    net::SupervisorOptions run = so;
    if (name == "kill-collect" && run.flight_dir.empty()) {
      run.flight_dir = scratch_dir("flight");
      if (run.flight_dir.empty()) {
        std::fprintf(stderr, "FAIL kill-collect: cannot mkdtemp a flight "
                             "dir (pass --flight-dir)\n");
        return 1;
      }
    }
    if (name == "kill-collect" && run.n < 4) run.n = 4;
    if (name == "overhead" && run.metrics_dir.empty()) {
      run.metrics_dir = scratch_dir("metrics");
      if (run.metrics_dir.empty()) {
        std::fprintf(stderr, "FAIL overhead: cannot mkdtemp a metrics dir "
                             "(pass --metrics-dir)\n");
        return 1;
      }
    }
    std::printf("== scenario %s (n=%zu seed=%llu)\n", name.c_str(), run.n,
                static_cast<unsigned long long>(run.world_seed));
    std::fflush(stdout);
    const std::string failure = net::run_scenario(name, run);
    if (!failure.empty()) {
      std::fprintf(stderr, "FAIL %s\n", failure.c_str());
      return 1;
    }
    std::printf("ok %s\n", name.c_str());
  }
  return 0;
}
