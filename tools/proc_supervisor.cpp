// proc_supervisor — CLI front end for the multi-process chaos harness
// (net/supervisor.h). Spawns an N-process `bcc node` cluster over real
// sockets and runs one named scenario:
//
//   proc_supervisor --bcc PATH/TO/bcc --scenario converge|kill-rejoin|
//                   partition-heal|stall-resume|drain|all
//                   [--nodes N --seed S --deadline SEC --metrics-dir DIR -v]
//
// Exit 0 when the scenario's assertions hold (survivors answered, exact
// sync fixpoint reached, drains exited 0, ...), 1 with a message otherwise.
// The transport_chaos_test gtest runs these same scenarios; this binary is
// the interactive/demo entry point (see README "multi-process quickstart").
#include <cstdio>
#include <string>
#include <vector>

#include "common/options.h"
#include "net/supervisor.h"

int main(int argc, char** argv) {
  using namespace bcc;
  Options opts("proc_supervisor", "multi-process chaos harness driver");
  auto& bcc_bin = opts.add_string("bcc", "", "path to the bcc binary");
  auto& scenario = opts.add_string("scenario", "converge",
                                   "scenario name, or 'all'");
  auto& nodes = opts.add_int("nodes", 5, "cluster size (process count)");
  auto& seed = opts.add_int("seed", 1, "shared world seed");
  auto& deadline = opts.add_double("deadline", 45.0,
                                   "seconds allowed to reach the fixpoint");
  auto& metrics_dir = opts.add_string(
      "metrics-dir", "", "directory for per-node metrics flushes");
  auto& verbose = opts.add_bool("verbose", false, "narrate child lifecycle");
  opts.parse(argc, argv);
  if (bcc_bin.empty()) {
    std::fprintf(stderr, "proc_supervisor: --bcc PATH is required\n");
    return 1;
  }

  net::SupervisorOptions so;
  so.n = static_cast<std::size_t>(nodes);
  so.world_seed = static_cast<std::uint64_t>(seed);
  so.bcc_bin = bcc_bin;
  so.converge_deadline = deadline;
  so.metrics_dir = metrics_dir;
  so.verbose = verbose;

  std::vector<std::string> names;
  if (scenario == "all") {
    names = {"converge", "kill-rejoin", "partition-heal", "stall-resume",
             "drain"};
  } else {
    names = {scenario};
  }
  for (const std::string& name : names) {
    std::printf("== scenario %s (n=%zu seed=%llu)\n", name.c_str(), so.n,
                static_cast<unsigned long long>(so.world_seed));
    std::fflush(stdout);
    const std::string failure = net::run_scenario(name, so);
    if (!failure.empty()) {
      std::fprintf(stderr, "FAIL %s\n", failure.c_str());
      return 1;
    }
    std::printf("ok %s\n", name.c_str());
  }
  return 0;
}
