// bench_diff — the bench-regression gate: compares two BENCH_<name>.json
// reports (or two directories of them) metric by metric and fails when any
// gated metric moved past its relative threshold in the "worse" direction.
//
//   bench_diff --baseline FILE|DIR --candidate FILE|DIR
//              [--threshold 0.10] [--json] [--out FILE]
//              [--metrics REGEX]
//
// Direction is inferred from the metric name: *_ns / *_us / *_ms are
// latencies (higher is worse), *per_second / *qps are throughputs (lower is
// worse); anything else is reported but never gates. Metrics present on only
// one side are reported as added/removed and do not gate either (a renamed
// benchmark should not block the build — the baseline refresh will).
//
// Exit codes: 0 = within thresholds, 1 = usage or I/O error, 2 = regression.
//
// The reports are the flat JSON the bench harness writes (obs/bench_report):
// one object whose numeric leaves are "metric.name": value pairs. A
// hand-rolled scanner keeps this dependency-free — it extracts every
// "quoted key": <number> pair and ignores the rest, which is exactly the
// schema bench_report emits.
#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "common/options.h"

namespace {

using bcc::Options;

/// All "key": number pairs in `text`, last occurrence wins.
std::map<std::string, double> parse_numeric_leaves(const std::string& text) {
  std::map<std::string, double> out;
  std::size_t i = 0;
  while ((i = text.find('"', i)) != std::string::npos) {
    const std::size_t key_end = text.find('"', i + 1);
    if (key_end == std::string::npos) break;
    const std::string key = text.substr(i + 1, key_end - i - 1);
    std::size_t j = key_end + 1;
    while (j < text.size() && std::isspace(static_cast<unsigned char>(text[j])))
      ++j;
    if (j >= text.size() || text[j] != ':') {
      i = key_end + 1;
      continue;
    }
    ++j;
    while (j < text.size() && std::isspace(static_cast<unsigned char>(text[j])))
      ++j;
    if (j < text.size() &&
        (std::isdigit(static_cast<unsigned char>(text[j])) ||
         text[j] == '-' || text[j] == '+')) {
      out[key] = std::strtod(text.c_str() + j, nullptr);
    }
    i = key_end + 1;
  }
  return out;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

enum class Direction { kHigherIsWorse, kLowerIsWorse, kInformational };

Direction direction_of(const std::string& name) {
  auto ends_with = [&name](const char* suffix) {
    const std::size_t n = std::strlen(suffix);
    return name.size() >= n && name.compare(name.size() - n, n, suffix) == 0;
  };
  if (ends_with("_ns") || ends_with("_us") || ends_with("_ms")) {
    return Direction::kHigherIsWorse;
  }
  if (ends_with("per_second") || ends_with("qps")) {
    return Direction::kLowerIsWorse;
  }
  return Direction::kInformational;
}

const char* direction_name(Direction d) {
  switch (d) {
    case Direction::kHigherIsWorse: return "higher_is_worse";
    case Direction::kLowerIsWorse: return "lower_is_worse";
    default: return "informational";
  }
}

struct MetricVerdict {
  std::string name;
  double baseline = 0.0;
  double candidate = 0.0;
  double rel_change = 0.0;  ///< (candidate - baseline) / |baseline|
  Direction direction = Direction::kInformational;
  bool regressed = false;
};

/// Collects BENCH_*.json under `dir` keyed by filename.
std::map<std::string, std::string> bench_files_in(const std::string& dir) {
  std::map<std::string, std::string> out;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string fname = entry.path().filename().string();
    if (fname.rfind("BENCH_", 0) == 0 &&
        fname.size() > 5 &&
        fname.compare(fname.size() - 5, 5, ".json") == 0) {
      out[fname] = entry.path().string();
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("bench_diff", "compare two bench reports with a threshold");
  auto& baseline_arg = opts.add_string("baseline", "",
                                       "baseline BENCH_*.json file or dir");
  auto& candidate_arg = opts.add_string("candidate", "",
                                        "candidate BENCH_*.json file or dir");
  auto& threshold = opts.add_double(
      "threshold", 0.10, "max allowed relative change in the worse direction");
  auto& metrics_re = opts.add_string(
      "metrics", "", "only gate metrics whose name matches this regex");
  auto& json = opts.add_bool("json", false,
                             "print the verdict as one JSON object");
  auto& out_path = opts.add_string("out", "",
                                   "also write the JSON verdict here");
  opts.parse(argc, argv);
  if (baseline_arg.empty() || candidate_arg.empty()) {
    std::fprintf(stderr,
                 "bench_diff: --baseline and --candidate are required\n");
    return 1;
  }
  if (threshold <= 0.0) {
    std::fprintf(stderr, "bench_diff: --threshold must be > 0\n");
    return 1;
  }

  // Resolve to (baseline file, candidate file) pairs.
  std::vector<std::pair<std::string, std::string>> pairs;
  std::error_code ec;
  const bool base_is_dir =
      std::filesystem::is_directory(baseline_arg, ec);
  const bool cand_is_dir =
      std::filesystem::is_directory(candidate_arg, ec);
  if (base_is_dir != cand_is_dir) {
    std::fprintf(stderr,
                 "bench_diff: --baseline and --candidate must both be files "
                 "or both be directories\n");
    return 1;
  }
  std::size_t missing_candidates = 0;
  if (base_is_dir) {
    const auto base_files = bench_files_in(baseline_arg);
    const auto cand_files = bench_files_in(candidate_arg);
    for (const auto& [fname, path] : base_files) {
      auto it = cand_files.find(fname);
      if (it == cand_files.end()) {
        // A baseline bench with no candidate counterpart is a regression,
        // not a skip: a deleted bench must not pass the gate silently.
        std::fprintf(stderr,
                     "bench_diff: REGRESSION %s missing from candidate dir\n",
                     fname.c_str());
        ++missing_candidates;
        continue;
      }
      pairs.emplace_back(path, it->second);
    }
    if (pairs.empty() && missing_candidates == 0) {
      std::fprintf(stderr, "bench_diff: no common BENCH_*.json files\n");
      return 1;
    }
  } else {
    pairs.emplace_back(baseline_arg, candidate_arg);
  }

  std::map<std::string, double> base_metrics;
  std::map<std::string, double> cand_metrics;
  for (const auto& [bpath, cpath] : pairs) {
    std::string btext, ctext;
    if (!read_file(bpath, btext)) {
      std::fprintf(stderr, "bench_diff: cannot read %s\n", bpath.c_str());
      return 1;
    }
    if (!read_file(cpath, ctext)) {
      std::fprintf(stderr, "bench_diff: cannot read %s\n", cpath.c_str());
      return 1;
    }
    for (const auto& [k, v] : parse_numeric_leaves(btext)) base_metrics[k] = v;
    for (const auto& [k, v] : parse_numeric_leaves(ctext)) cand_metrics[k] = v;
  }
  if (base_metrics.empty() && missing_candidates == 0) {
    std::fprintf(stderr, "bench_diff: baseline has no numeric metrics\n");
    return 1;
  }

  std::regex filter;
  const bool has_filter = !metrics_re.empty();
  if (has_filter) {
    try {
      filter = std::regex(metrics_re);
    } catch (const std::regex_error& e) {
      std::fprintf(stderr, "bench_diff: bad --metrics regex: %s\n", e.what());
      return 1;
    }
  }

  std::vector<MetricVerdict> verdicts;
  std::vector<std::string> added, removed;
  for (const auto& [name, base] : base_metrics) {
    auto it = cand_metrics.find(name);
    if (it == cand_metrics.end()) {
      removed.push_back(name);
      continue;
    }
    MetricVerdict v;
    v.name = name;
    v.baseline = base;
    v.candidate = it->second;
    v.direction = direction_of(name);
    if (base != 0.0) {
      v.rel_change = (v.candidate - v.baseline) / std::abs(v.baseline);
    } else {
      v.rel_change = v.candidate == 0.0 ? 0.0 : 1.0;
    }
    const bool gated =
        v.direction != Direction::kInformational &&
        (!has_filter || std::regex_search(name, filter));
    if (gated) {
      v.regressed =
          (v.direction == Direction::kHigherIsWorse &&
           v.rel_change > threshold) ||
          (v.direction == Direction::kLowerIsWorse &&
           v.rel_change < -threshold);
    }
    verdicts.push_back(std::move(v));
  }
  for (const auto& [name, value] : cand_metrics) {
    (void)value;
    if (!base_metrics.count(name)) added.push_back(name);
  }

  std::size_t regressions = 0;
  for (const MetricVerdict& v : verdicts) {
    if (v.regressed) ++regressions;
  }

  std::ostringstream j;
  const bool failed = regressions > 0 || missing_candidates > 0;
  j << "{\"threshold\":" << threshold << ",\"compared\":" << verdicts.size()
    << ",\"regressions\":" << regressions << ",\"added\":" << added.size()
    << ",\"removed\":" << removed.size()
    << ",\"missing_files\":" << missing_candidates
    << ",\"verdict\":\"" << (failed ? "regression" : "ok") << "\""
    << ",\"metrics\":[";
  bool first = true;
  for (const MetricVerdict& v : verdicts) {
    if (!first) j << ',';
    first = false;
    j << "\n{\"name\":\"" << v.name << "\",\"baseline\":" << v.baseline
      << ",\"candidate\":" << v.candidate
      << ",\"rel_change\":" << v.rel_change
      << ",\"direction\":\"" << direction_name(v.direction)
      << "\",\"regressed\":" << (v.regressed ? "true" : "false") << '}';
  }
  j << "]}\n";

  if (json) {
    std::fputs(j.str().c_str(), stdout);
  } else {
    for (const MetricVerdict& v : verdicts) {
      if (!v.regressed && std::abs(v.rel_change) <= threshold) continue;
      std::printf("%s %s: %.4g -> %.4g (%+.1f%%)\n",
                  v.regressed ? "REGRESSION" : "moved", v.name.c_str(),
                  v.baseline, v.candidate, 100.0 * v.rel_change);
    }
    std::printf("bench_diff: %zu metrics compared, %zu regression(s), "
                "%zu added, %zu removed, %zu missing file(s) "
                "(threshold %.0f%%)\n",
                verdicts.size(), regressions, added.size(), removed.size(),
                missing_candidates, 100.0 * threshold);
  }
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary);
    if (!out || !(out << j.str())) {
      std::fprintf(stderr, "bench_diff: cannot write %s\n", out_path.c_str());
      return 1;
    }
  }
  return failed ? 2 : 0;
}
