#!/usr/bin/env bash
# Lints metric-name literals against the bcc.<module>.<metric> convention
# (lowercase [a-z0-9_] segments, at least three, leading "bcc") documented in
# src/obs/metrics.h. Scans every counter("...")/gauge("...")/histogram("...")
# registration literal in src/, tools/ and bench/; run from the repo root
# (ctest wires it up as `obs_metric_name_lint`).
#
# The registry enforces the same rule at runtime (BCC_REQUIRE); this catches
# names on registration paths no test happens to execute.
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
status=0
found=0

# Registration literals: .counter("..."), .gauge("..."), .histogram("...").
# set("...") on a BenchReport takes full names too, so include it.
pattern='(counter|gauge|histogram|set)\("([^"]*)"'

while IFS=: read -r file line name; do
  [ -n "$name" ] || continue
  found=$((found + 1))
  if ! printf '%s' "$name" | grep -Eq '^bcc(\.[a-z0-9_]+){2,}$'; then
    echo "BAD METRIC NAME: $name ($file:$line)"
    status=1
  fi
done < <(grep -rnoE "$pattern" "$root/src" "$root/tools" "$root/bench" \
           --include='*.cpp' --include='*.h' \
         | sed -E "s/:(counter|gauge|histogram|set)\(\"/:/; s/\"$//" \
         | grep -v 'obs_test\|metrics\.cpp:.*check' )

if [ "$found" -eq 0 ]; then
  echo "check_metrics_names.sh: no registration literals found (pattern drift?)"
  exit 1
fi

if [ "$status" -eq 0 ]; then
  echo "check_metrics_names.sh: $found metric name literals OK"
fi
exit "$status"
