#!/usr/bin/env bash
# Lints metric-name literals against the bcc.<module>.<metric> convention
# (lowercase [a-z0-9_] segments, at least three, leading "bcc") documented in
# src/obs/metrics.h. Scans every counter("...")/gauge("...")/histogram("...")
# registration literal in src/, tools/ and bench/; run from the repo root
# (ctest wires it up as `obs_metric_name_lint`).
#
# Beyond the shape check:
#   * the <module> segment must come from the known-module list below, so a
#     typo like bcc.cnv.* fails instead of silently forking a namespace;
#   * the same full-name literal registered from two distinct source lines
#     fails — two call sites silently sharing one instrument is almost
#     always an accident (share through a named accessor instead).
#
# The registry enforces the shape rule at runtime (BCC_REQUIRE); this catches
# names on registration paths no test happens to execute.
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
status=0
found=0

# One segment per instrumented subsystem; extend deliberately when a new
# module grows instruments.
modules='sim|serve|tree|bench|conv|trace|net|core|collect|flight|profile'

# Names deeper than three segments must use a declared submodule: the third
# segment of a 4+-segment name is checked against this list (bench.* names
# are exempt — their third segment is the benchmark name itself).
submodules='shard'

# Registration literals: .counter("..."), .gauge("..."), .histogram("...").
# set("...") on a BenchReport takes full names too, so include it.
pattern='(counter|gauge|histogram|set)\("([^"]*)"'

hits="$(grep -rnoE "$pattern" "$root/src" "$root/tools" "$root/bench" \
          --include='*.cpp' --include='*.h' \
        | sed -E "s/:(counter|gauge|histogram|set)\(\"/:/; s/\"$//" \
        | grep -v 'obs_test\|metrics\.cpp:.*check' )"

while IFS=: read -r file line name; do
  [ -n "$name" ] || continue
  found=$((found + 1))
  if ! printf '%s' "$name" | grep -Eq '^bcc(\.[a-z0-9_]+){2,}$'; then
    echo "BAD METRIC NAME: $name ($file:$line)"
    status=1
    continue
  fi
  module="$(printf '%s' "$name" | cut -d. -f2)"
  if ! printf '%s' "$module" | grep -Eq "^($modules)$"; then
    echo "UNKNOWN MODULE: $name uses bcc.$module.* ($file:$line) — known:" \
         "$(printf '%s' "$modules" | tr '|' ' ')"
    status=1
    continue
  fi
  segments="$(printf '%s' "$name" | awk -F. '{ print NF }')"
  if [ "$segments" -gt 3 ] && [ "$module" != "bench" ]; then
    submodule="$(printf '%s' "$name" | cut -d. -f3)"
    if ! printf '%s' "$submodule" | grep -Eq "^($submodules)$"; then
      echo "UNKNOWN SUBMODULE: $name uses bcc.$module.$submodule.*" \
           "($file:$line) — known: $(printf '%s' "$submodules" | tr '|' ' ')"
      status=1
    fi
  fi
done <<< "$hits"

# Duplicate registrations: the same literal from more than one file:line.
dups="$(printf '%s\n' "$hits" | awk -F: 'NF >= 3 { print $3 }' \
        | sort | uniq -d)"
if [ -n "$dups" ]; then
  while IFS= read -r name; do
    echo "DUPLICATE REGISTRATION: $name at:"
    printf '%s\n' "$hits" | awk -F: -v n="$name" '$3 == n { print "  " $1 ":" $2 }'
    status=1
  done <<< "$dups"
fi

if [ "$found" -eq 0 ]; then
  echo "check_metrics_names.sh: no registration literals found (pattern drift?)"
  exit 1
fi

if [ "$status" -eq 0 ]; then
  echo "check_metrics_names.sh: $found metric name literals OK (modules, duplicates checked)"
fi
exit "$status"
