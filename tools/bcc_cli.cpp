// bcc — command-line front end for the library.
//
// Subcommands:
//   bcc gen      --out DIR --name NAME [--hosts N --noise S --p20 B --p80 B]
//                  synthesize a calibrated PlanetLab-like dataset to CSV
//   bcc preprocess --in RAW.csv --out DIR --name NAME
//                  extract the complete submatrix of a raw incomplete trace
//                  (the paper's §IV preprocessing; 0/blank = unmeasured)
//   bcc embed    --data DIR/NAME [--snapshot FILE --exhaustive]
//                  build the prediction framework, report accuracy, snapshot
//   bcc treeness --data DIR/NAME [--samples N]
//                  estimate the dataset's quartet-epsilon treeness
//   bcc query    --data DIR/NAME --k K --b MBPS [--start ID --n_cut N
//                  --repeat N --shards N --rate-qps Q --burst B
//                  --queue-limit N --explain --metrics-out FILE]
//                  run the decentralized system and answer one query through
//                  the sharded QueryService (repeats exercise the memo
//                  cache; --rate-qps/--queue-limit turn on admission
//                  control, and overloaded repeats come back shed with a
//                  stale degraded answer). --explain prints the per-query
//                  stage breakdown (queue/pin/validate/admission/cache/
//                  compute) the serving plane measured for the last repeat
//   bcc eval     --data DIR/NAME [--queries N --k K]
//                  WPR/RR sweep over the bandwidth grid (mini Fig. 3)
//   bcc chaos    --data DIR/NAME [--drop P --dup P --jitter S --crash F
//                  --metrics-out FILE]
//                  run the asynchronous gossip stack over a lossy network
//                  with crash/recover faults and check it still reaches the
//                  synchronous ground-truth fixpoint
//   bcc node     --id I --nodes N --base-port P [--seed S --n-cut C
//                  --period SEC --host ADDR --run-for SEC --metrics-out FILE
//                  --state-out FILE --flight-recorder FILE --trace-gossip
//                  --profile-hz HZ]
//                  run ONE overlay node as a real OS process: node i listens
//                  on base-port+i and gossips with its anchor-tree neighbors
//                  over TCP (reconnect/backoff, heartbeats, half-open
//                  detection). Prints "ready" once listening ("bind-failed"
//                  + exit 3 on port collision); stdin accepts the control
//                  verbs dump/close-listener/open-listener/isolate/
//                  deisolate/quit. SIGTERM/SIGINT drain and exit 0. Spawn 5
//                  of these (same --seed) and they converge to the exact
//                  fixpoint — tools/proc_supervisor automates the chaos
//                  version of that experiment
//   bcc collect  [--nodes N --base-port P --host ADDR --timeout SEC
//                  --flight-dir DIR --out DIR]
//                  scrape every node's TELEMETRY endpoint (bounded per-node
//                  deadline — dead nodes yield a partial fleet, never a
//                  hang), recover the rest from --flight-dir/*.flight crash
//                  rings, and merge: one fleet metrics registry (counters
//                  sum, histograms bucket-exact, gauges worst-observed) and
//                  one clock-aligned Perfetto timeline with cross-process
//                  flow arrows (--out DIR writes fleet_trace.json +
//                  fleet_metrics.json, plus fleet_profile.folded when any
//                  node ran with --profile-hz). Prints the fleet's p99
//                  query-latency exemplar trace id and hottest stacks when
//                  nodes report them
//   bcc top      [--nodes N --base-port P --host ADDR --interval SEC
//                  --iterations N --timeout SEC]
//                  refreshing terminal view over the same scrape: per-node
//                  frame/query rates, shed %, staleness, suspicion, span
//                  drops, plus fleet reconvergence histograms
//   bcc metrics  [--data DIR/NAME --queries N --k K --format prom|json|jsonl]
//                  run a small end-to-end pipeline (synthetic dataset when no
//                  --data) and print the global metrics registry
//   bcc trace    [--data DIR/NAME --categories LIST --capacity N
//                  --format text|jsonl|chrome --trace-id ID
//                  --flight-dir DIR --out FILE]
//                  same pipeline with span tracing enabled; dump the spans
//                  as an indented tree, JSON-lines, or a Chrome/Perfetto
//                  trace (load chrome output in ui.perfetto.dev).
//                  --trace-id keeps only that query's causal span chain
//                  (the id a result/exemplar carries); --flight-dir reads
//                  spans from crash flight rings instead of running the
//                  pipeline
//   bcc profile  [--data DIR/NAME --queries N --k K --hz HZ --mode cpu|wall
//                  --out FILE]
//                  run the same pipeline under the SIGPROF sampling
//                  profiler and write folded stacks ("outer;inner N",
//                  flamegraph.pl / speedscope input) plus a hottest-stacks
//                  summary
//   bcc health   [--data DIR/NAME --drop P --dup P --jitter S --crash F
//                  --sample-period S --serve-queries N --serve-qps Q
//                  --metrics-out FILE]
//                  run the gossip stack under faults with the
//                  ConvergenceMonitor sampling bcc.conv.* and report
//                  time-to-convergence and per-node staleness, then probe
//                  the serve plane: a query burst through an
//                  admission-controlled QueryService over a snapshot of the
//                  (possibly degraded) overlay, reporting admitted/shed
//                  counts and bcc.serve.shard.* health
//
// `--metrics-out FILE` writes the global registry as one JSON object.
// Any dataset can be a user-provided measurement matrix: put it at
// DIR/NAME.bw.csv (square Mbps CSV, zero diagonal; asymmetry is averaged).
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bcc.h"
#include "common/shutdown.h"
#include "exp/fig3.h"
#include "net/node_runtime.h"
#include "net/supervisor.h"
#include "net/telemetry_client.h"
#include "obs/collect.h"
#include "obs/profile.h"

namespace {

using namespace bcc;

// Snapshot-lookup name for the serve-plane latency histogram (registered in
// serve/query_service.cpp) — shared so the metric-name lint sees exactly
// one literal per instrument.
constexpr const char kQueryLatencyMetric[] = "bcc.serve.query_micros";

int cmd_gen(int argc, const char* const* argv) {
  Options opts("bcc gen", "synthesize a calibrated dataset to CSV");
  auto& out = opts.add_string("out", ".", "output directory");
  auto& name = opts.add_string("name", "synthetic", "dataset name");
  auto& hosts = opts.add_int("hosts", 150, "number of hosts");
  auto& noise = opts.add_double("noise", 0.25, "measurement noise sigma");
  auto& p20 = opts.add_double("p20", 15.0, "target 20th percentile (Mbps)");
  auto& p80 = opts.add_double("p80", 75.0, "target 80th percentile (Mbps)");
  auto& seed = opts.add_int("seed", 42, "generator seed");
  opts.parse(argc, argv);

  Rng rng(static_cast<std::uint64_t>(seed));
  SynthOptions synth;
  synth.name = name;
  synth.hosts = static_cast<std::size_t>(hosts);
  synth.noise_sigma = noise;
  synth.target_p20 = p20;
  synth.target_p80 = p80;
  const SynthDataset data = synthesize_planetlab(synth, rng);
  save_dataset(data, out);
  std::printf("wrote %s/%s.bw.csv (%zu hosts, p20=%.1f p80=%.1f Mbps)\n",
              out.c_str(), name.c_str(), data.bandwidth.size(),
              data.bandwidth.percentile(20.0), data.bandwidth.percentile(80.0));
  return 0;
}

/// Writes the global metrics registry to `path` as one JSON object.
/// No-op when `path` is empty; returns false (after complaining) on I/O
/// failure.
bool maybe_write_metrics(const std::string& path) {
  if (path.empty()) return true;
  const std::string json =
      obs::json_object(obs::Registry::global().snapshot()) + "\n";
  if (!obs::write_text_file(path, json)) {
    std::fprintf(stderr, "bcc: cannot write metrics to %s\n", path.c_str());
    return false;
  }
  std::printf("metrics written to %s\n", path.c_str());
  return true;
}

/// Splits "--data DIR/NAME" into directory and name.
bool split_data_arg(const std::string& data, std::string& dir,
                    std::string& name) {
  const auto slash = data.find_last_of('/');
  if (slash == std::string::npos) {
    dir = ".";
    name = data;
  } else {
    dir = data.substr(0, slash);
    name = data.substr(slash + 1);
  }
  return !name.empty();
}

int cmd_embed(int argc, const char* const* argv) {
  Options opts("bcc embed", "build the prediction framework for a dataset");
  auto& data_arg = opts.add_string("data", "", "DIR/NAME of the dataset");
  auto& snapshot = opts.add_string("snapshot", "", "save the framework here");
  auto& exhaustive = opts.add_bool("exhaustive", false,
                                   "exhaustive end-node search");
  auto& seed = opts.add_int("seed", 42, "join-order seed");
  opts.parse(argc, argv);
  std::string dir, name;
  if (!split_data_arg(data_arg, dir, name)) {
    std::fprintf(stderr, "bcc embed: --data DIR/NAME is required\n");
    return 1;
  }
  const SynthDataset data = load_dataset(name, dir);
  Rng rng(static_cast<std::uint64_t>(seed));
  EmbedOptions embed_options;
  embed_options.search =
      exhaustive ? EndSearch::kExhaustive : EndSearch::kAnchorDescent;
  EmbedStats stats;
  const Framework fw =
      build_framework(data.distances, rng, embed_options, &stats);
  const auto errs = relative_bandwidth_errors(data.bandwidth,
                                              fw.predicted_distances(), data.c);
  std::printf("embedded %zu hosts: %.1f probes/join, median rel. error "
              "%.3f, p90 %.3f, overlay diameter %zu\n",
              fw.prediction.host_count(),
              static_cast<double>(stats.probes) /
                  static_cast<double>(stats.joins),
              median(errs), percentile(errs, 90.0), fw.anchors.diameter());
  if (!snapshot.empty()) {
    save_framework(fw, snapshot);
    std::printf("framework snapshot written to %s\n", snapshot.c_str());
  }
  return 0;
}

int cmd_treeness(int argc, const char* const* argv) {
  Options opts("bcc treeness", "estimate quartet-epsilon treeness");
  auto& data_arg = opts.add_string("data", "", "DIR/NAME of the dataset");
  auto& samples = opts.add_int("samples", 100000, "quartets to sample");
  auto& seed = opts.add_int("seed", 42, "sampling seed");
  opts.parse(argc, argv);
  std::string dir, name;
  if (!split_data_arg(data_arg, dir, name)) {
    std::fprintf(stderr, "bcc treeness: --data DIR/NAME is required\n");
    return 1;
  }
  const SynthDataset data = load_dataset(name, dir);
  Rng rng(static_cast<std::uint64_t>(seed));
  const TreenessStats stats = estimate_treeness(
      data.distances, rng, static_cast<std::size_t>(samples));
  std::printf("eps_avg = %.4f (eps* = %.4f, max %.4f over %zu quartets)\n",
              stats.epsilon_avg, epsilon_star(stats.epsilon_avg),
              stats.epsilon_max, stats.quartets);
  return 0;
}

/// Renders one QueryProfile as the `bcc query --explain` stage table. The
/// stages telescope (each one's end is the next one's begin), so the
/// accounted row matches the total up to clock granularity.
void print_explain(const QueryProfile& p) {
  std::printf("explain: path=%s shard=%u snapshot=v%llu\n", to_string(p.path),
              p.shard, static_cast<unsigned long long>(p.snapshot_version));
  struct Row {
    const char* name;
    std::uint64_t ns;
  };
  const Row rows[] = {
      {"queue", p.queue_ns},       {"epoch-pin", p.epoch_pin_ns},
      {"validate", p.validate_ns}, {"admission", p.admission_ns},
      {"cache", p.cache_ns},       {"compute", p.compute_ns},
  };
  const double total = p.total_ns == 0 ? 1.0 : static_cast<double>(p.total_ns);
  for (const Row& row : rows) {
    std::printf("  %-10s %10.1f us  %5.1f%%\n", row.name,
                static_cast<double>(row.ns) * 1e-3,
                100.0 * static_cast<double>(row.ns) / total);
  }
  std::printf("  %-10s %10.1f us  %5.1f%% of %0.1f us total\n", "accounted",
              static_cast<double>(p.stages_ns()) * 1e-3,
              100.0 * static_cast<double>(p.stages_ns()) / total,
              static_cast<double>(p.total_ns) * 1e-3);
}

int cmd_query(int argc, const char* const* argv) {
  Options opts("bcc query", "answer one (k, b) query decentralized");
  auto& data_arg = opts.add_string("data", "", "DIR/NAME of the dataset");
  auto& k = opts.add_int("k", 10, "cluster size constraint");
  auto& b = opts.add_double("b", 40.0, "bandwidth constraint (Mbps)");
  auto& start = opts.add_int("start", 0, "entry node");
  auto& n_cut = opts.add_int("n_cut", 10, "aggregate size limit");
  auto& repeat = opts.add_int("repeat", 1,
                              "serve the query this many times (cache warms "
                              "after the first)");
  auto& shards = opts.add_int("shards", 16, "query-plane shard count");
  auto& rate_qps = opts.add_double(
      "rate-qps", 0.0,
      "admitted queries/sec per shard (0 = no token bucket)");
  auto& burst = opts.add_double("burst", 64.0, "token-bucket burst depth");
  auto& queue_limit = opts.add_int(
      "queue-limit", 0, "max in-flight queries per shard (0 = unlimited)");
  auto& explain = opts.add_bool(
      "explain", false,
      "print the serving plane's stage-by-stage latency breakdown");
  auto& metrics_out = opts.add_string("metrics-out", "",
                                      "write the metrics registry here (JSON)");
  auto& seed = opts.add_int("seed", 42, "framework seed");
  opts.parse(argc, argv);
  std::string dir, name;
  if (!split_data_arg(data_arg, dir, name)) {
    std::fprintf(stderr, "bcc query: --data DIR/NAME is required\n");
    return 1;
  }
  const SynthDataset data = load_dataset(name, dir);
  Rng rng(static_cast<std::uint64_t>(seed));
  const Framework fw = build_framework(data.distances, rng);
  SystemOptions sys_options;
  sys_options.n_cut = static_cast<std::size_t>(n_cut);
  DecentralizedClusterSystem sys(fw.anchors, fw.predicted_distances(),
                                 BandwidthClasses::uniform_grid(5, 300, 5),
                                 sys_options);
  sys.run_to_convergence();

  QueryServiceOptions serve_options;
  serve_options.shards =
      static_cast<std::size_t>(std::max(1, static_cast<int>(shards)));
  serve_options.admission.rate_qps = rate_qps;
  serve_options.admission.burst = burst;
  serve_options.admission.queue_limit =
      static_cast<std::size_t>(std::max(0, static_cast<int>(queue_limit)));
  QueryService service(sys, serve_options);
  QueryRequest request = QueryRequest::bandwidth(
      static_cast<NodeId>(start), static_cast<std::size_t>(k), b);
  if (explain) request.with_profile();
  QueryResult r;
  const int times = std::max(1, static_cast<int>(repeat));
  // SIGINT/SIGTERM drain: stop submitting, flush metrics, exit 0.
  install_shutdown_handlers();
  int completed = 0;
  for (int i = 0; i < times && !shutdown_requested(); ++i) {
    r = service.submit(request);
    ++completed;
  }
  if (shutdown_requested()) {
    std::printf("interrupted — drained after %d/%d queries\n", completed,
                times);
    maybe_write_metrics(metrics_out);
    return 0;
  }

  // A shed response can still carry a well-formed stale answer from the
  // last converged snapshot — report it, flagged, instead of failing.
  const bool shed_answer =
      r.status == QueryStatus::kShed && !r.cluster.empty();
  if (r.status != QueryStatus::kFound && !shed_answer) {
    std::printf("no cluster of %lld hosts at >= %.1f Mbps "
                "(status %s, route length %zu)\n",
                static_cast<long long>(k), b, to_string(r.status), r.hops);
    if (r.profile) print_explain(*r.profile);
    maybe_write_metrics(metrics_out);
    return 2;
  }
  if (shed_answer) {
    std::printf("shed under overload — stale answer from snapshot v%llu\n",
                static_cast<unsigned long long>(r.snapshot_version));
  }
  std::printf("cluster (%zu hops):", r.hops);
  for (NodeId h : r.cluster) std::printf(" %zu", h);
  WprAccumulator wpr;
  wpr.add_cluster(data.bandwidth, r.cluster, b);
  std::printf("\nreal-bandwidth check: %zu/%zu pairs below b (WPR %.3f)\n",
              wpr.wrong_pairs(), wpr.total_pairs(), wpr.rate());
  const auto stats = service.stats();
  std::printf("served %d time(s): %zu cache hits, p50 %zu us, p99 %zu us\n",
              times, static_cast<std::size_t>(stats.cache_hits),
              static_cast<std::size_t>(stats.latency_percentile_micros(50.0)),
              static_cast<std::size_t>(stats.latency_percentile_micros(99.0)));
  if (r.profile) print_explain(*r.profile);
  const AdmissionStatsSnapshot admission = service.admission_stats();
  if (serve_options.admission.enabled()) {
    std::printf("admission (%zu shards, %.0f qps/shard): %llu admitted, "
                "%llu shed (%llu with stale answer), peak shard in-flight %zu\n",
                serve_options.shards, serve_options.admission.rate_qps,
                static_cast<unsigned long long>(admission.admitted),
                static_cast<unsigned long long>(admission.shed_total()),
                static_cast<unsigned long long>(admission.shed_with_answer),
                admission.peak_shard_inflight);
  }
  const MessageMetrics& mm = sys.metrics();
  std::printf("gossip traffic: %zu msgs / %zu bytes "
              "(dropped %zu, duplicated %zu, retried %zu, suspected %zu)\n",
              mm.total_messages(), mm.total_bytes(), mm.dropped(),
              mm.duplicated(), mm.retried(), mm.suspected());
  if (!maybe_write_metrics(metrics_out)) return 1;
  return 0;
}

int cmd_chaos(int argc, const char* const* argv) {
  Options opts("bcc chaos",
               "async gossip under injected faults vs. the sync fixpoint");
  auto& data_arg = opts.add_string("data", "", "DIR/NAME of the dataset");
  auto& drop = opts.add_double("drop", 0.2, "per-message drop probability");
  auto& dup = opts.add_double("dup", 0.05,
                              "per-message duplication probability");
  auto& jitter = opts.add_double("jitter", 0.02,
                                 "max extra delivery delay (s, reorders)");
  auto& crash = opts.add_double("crash", 0.1,
                                "fraction of nodes that crash and recover");
  auto& n_cut = opts.add_int("n_cut", 10, "aggregate size limit");
  auto& metrics_out = opts.add_string("metrics-out", "",
                                      "write the metrics registry here (JSON)");
  auto& seed = opts.add_int("seed", 42, "framework + fault seed");
  opts.parse(argc, argv);
  std::string dir, name;
  if (!split_data_arg(data_arg, dir, name)) {
    std::fprintf(stderr, "bcc chaos: --data DIR/NAME is required\n");
    return 1;
  }
  if (drop < 0.0 || drop >= 1.0 || crash < 0.0 || crash > 1.0) {
    std::fprintf(stderr, "bcc chaos: need 0 <= --drop < 1, 0 <= --crash <= 1\n");
    return 1;
  }
  const SynthDataset data = load_dataset(name, dir);
  Rng rng(static_cast<std::uint64_t>(seed));
  const Framework fw = build_framework(data.distances, rng);
  const DistanceMatrix predicted = fw.predicted_distances();
  const BandwidthClasses classes = BandwidthClasses::uniform_grid(5, 300, 5);
  const std::size_t n = fw.prediction.host_count();

  FaultPlan plan(static_cast<std::uint64_t>(seed) + 1);
  plan.set_default_faults(
      {.drop_prob = drop, .duplicate_prob = dup, .jitter_max = jitter});
  const auto order = fw.anchors.bfs_order();
  const std::size_t crashers =
      std::min(n - 1, static_cast<std::size_t>(crash * static_cast<double>(n)));
  for (std::size_t i = 0; i < crashers; ++i) {
    // Staggered mid-run outages; everyone recovers before the quiet tail.
    plan.add_crash(order[1 + i], 4.0 + 2.0 * static_cast<double>(i),
                   10.0 + 2.0 * static_cast<double>(i));
  }

  AsyncOverlayOptions async_options;
  async_options.n_cut = static_cast<std::size_t>(n_cut);
  async_options.faults = &plan;
  AsyncOverlay async(&fw.anchors, &predicted, &classes, async_options,
                     static_cast<std::uint64_t>(seed) + 2);
  EventEngine engine;
  const double diameter = static_cast<double>(fw.anchors.diameter());
  const double horizon =
      10.0 + 2.0 * static_cast<double>(crashers) + (8.0 + 24.0 * drop) * (diameter + 2.0);
  async.run_for(engine, horizon);

  SystemOptions sync_options;
  sync_options.n_cut = static_cast<std::size_t>(n_cut);
  DecentralizedClusterSystem sync(fw.anchors, predicted, classes,
                                  sync_options);
  sync.run_to_convergence();
  std::size_t mismatched = 0;
  for (NodeId x : order) {
    const OverlayNode& a = async.nodes().at(x);
    const OverlayNode& s = sync.node(x);
    auto sorted = [](std::vector<NodeId> v) {
      std::sort(v.begin(), v.end());
      return v;
    };
    for (NodeId m : s.neighbors) {
      if (sorted(a.aggr_node.at(m)) != sorted(s.aggr_node.at(m)) ||
          a.aggr_crt.at(m) != s.aggr_crt.at(m)) {
        ++mismatched;
      }
    }
  }

  const MessageMetrics& mm = engine.metrics();
  std::printf("chaos run: %zu hosts, drop %.0f%%, dup %.0f%%, jitter %.3fs, "
              "%zu crash/recover, %.1fs simulated\n",
              n, drop * 100.0, dup * 100.0, jitter, crashers, horizon);
  std::printf("traffic: %zu msgs / %zu bytes | dropped %zu, duplicated %zu, "
              "retried %zu, suspected %zu\n",
              mm.total_messages(), mm.total_bytes(), mm.dropped(),
              mm.duplicated(), mm.retried(), mm.suspected());
  std::printf("gossip rounds %zu, last state change at t=%.2fs, healthy: %s\n",
              async.gossip_rounds(), async.last_change(),
              async.healthy() ? "yes" : "no");
  if (!maybe_write_metrics(metrics_out)) return 1;
  if (mismatched != 0) {
    std::printf("FIXPOINT MISMATCH: %zu neighbor tables differ from the "
                "synchronous ground truth\n",
                mismatched);
    return 2;
  }
  std::printf("fixpoint check: all tables match the synchronous ground truth\n");
  return 0;
}

/// Loads DIR/NAME when given, otherwise synthesizes a small in-memory
/// dataset so `bcc metrics` / `bcc trace` run without any files.
SynthDataset dataset_or_synthetic(const std::string& data_arg,
                                  std::uint64_t seed, const char* cmd) {
  std::string dir, name;
  if (split_data_arg(data_arg, dir, name)) return load_dataset(name, dir);
  Rng rng(seed);
  SynthOptions synth;
  synth.name = "inline";
  synth.hosts = 60;
  std::fprintf(stderr, "%s: no --data given, using a synthetic %zu-host "
               "dataset\n", cmd, synth.hosts);
  return synthesize_planetlab(synth, rng);
}

/// Shared pipeline for `bcc metrics` / `bcc trace`: embed, converge the
/// cycle engine, churn the maintainer (tree spans), run the async overlay
/// under mild loss (gossip spans, fault counters), then serve a query mix
/// through the QueryService (serve spans, cache hits). Exercises every
/// instrumented layer so the export shows live numbers.
void run_observed_pipeline(const SynthDataset& data, std::uint64_t seed,
                           std::size_t queries, std::size_t k) {
  Rng rng(seed);
  const Framework fw = build_framework(data.distances, rng);
  const DistanceMatrix predicted = fw.predicted_distances();
  const BandwidthClasses classes = BandwidthClasses::uniform_grid(5, 300, 5);
  const std::size_t n = fw.prediction.host_count();

  // Tree maintenance churn: a join/leave pair over a fresh maintainer.
  FrameworkMaintainer maint(&data.distances);
  for (NodeId h = 0; h < n; ++h) maint.join(h);
  maint.leave(n / 2);

  // Async gossip under mild loss (feeds fault counters + gossip spans).
  FaultPlan plan(seed + 1);
  plan.set_default_faults({.drop_prob = 0.1, .duplicate_prob = 0.02,
                           .jitter_max = 0.01});
  AsyncOverlayOptions async_options;
  async_options.faults = &plan;
  AsyncOverlay async(&fw.anchors, &predicted, &classes, async_options,
                     seed + 2);
  EventEngine engine;
  async.run_for(engine,
                10.0 * (static_cast<double>(fw.anchors.diameter()) + 2.0));

  // Cycle-driven engine to convergence (sim spans + cycle histogram).
  DecentralizedClusterSystem sys(fw.anchors, predicted, classes);
  sys.run_to_convergence();

  // Serve a query mix; every other request repeats, so the cache hit ratio
  // lands near 0.5.
  QueryService service(sys);
  std::vector<QueryRequest> batch;
  batch.reserve(queries);
  for (std::size_t i = 0; i < queries; ++i) {
    const NodeId start = static_cast<NodeId>((i / 2) % n);
    batch.push_back(QueryRequest::at_class(start, k, (i / 2) % 3));
  }
  service.submit_batch(batch);
}

int cmd_metrics(int argc, const char* const* argv) {
  Options opts("bcc metrics",
               "run a small pipeline and print the metrics registry");
  auto& data_arg = opts.add_string("data", "",
                                   "DIR/NAME of the dataset (optional)");
  auto& queries = opts.add_int("queries", 40, "queries to serve");
  auto& k = opts.add_int("k", 5, "cluster size constraint");
  auto& format = opts.add_string("format", "prom",
                                 "output format: prom | json | jsonl");
  auto& out = opts.add_string("out", "", "write here instead of stdout");
  auto& seed = opts.add_int("seed", 42, "pipeline seed");
  opts.parse(argc, argv);
  if (format != "prom" && format != "json" && format != "jsonl") {
    std::fprintf(stderr, "bcc metrics: --format must be prom, json or jsonl\n");
    return 1;
  }
  const SynthDataset data = dataset_or_synthetic(
      data_arg, static_cast<std::uint64_t>(seed), "bcc metrics");
  run_observed_pipeline(data, static_cast<std::uint64_t>(seed),
                        static_cast<std::size_t>(queries),
                        static_cast<std::size_t>(k));
  const obs::RegistrySnapshot snap = obs::Registry::global().snapshot();
  const std::string text = format == "prom"  ? obs::prometheus_text(snap)
                           : format == "json" ? obs::json_object(snap) + "\n"
                                              : obs::json_lines(snap);
  if (out.empty()) {
    std::fputs(text.c_str(), stdout);
  } else if (!obs::write_text_file(out, text)) {
    std::fprintf(stderr, "bcc metrics: cannot write %s\n", out.c_str());
    return 1;
  }
  return 0;
}

/// Parses "sim,gossip,serve" etc. ("all" = every category) into enable
/// calls on the global tracer. Returns false on an unknown category name.
bool enable_categories(const std::string& list) {
  obs::Tracer& tracer = obs::Tracer::global();
  if (list == "all") {
    tracer.enable_all();
    return true;
  }
  std::size_t begin = 0;
  while (begin <= list.size()) {
    std::size_t end = list.find(',', begin);
    if (end == std::string::npos) end = list.size();
    const std::string token = list.substr(begin, end - begin);
    bool known = false;
    for (std::size_t c = 0; c < obs::kSpanCategoryCount; ++c) {
      const auto category = static_cast<obs::SpanCategory>(c);
      if (token == obs::to_string(category)) {
        tracer.enable(category);
        known = true;
      }
    }
    if (!known) {
      std::fprintf(stderr, "bcc trace: unknown category '%s'\n", token.c_str());
      return false;
    }
    begin = end + 1;
  }
  return true;
}

int cmd_trace(int argc, const char* const* argv) {
  Options opts("bcc trace",
               "run a small pipeline with span tracing on and dump the spans");
  auto& data_arg = opts.add_string("data", "",
                                   "DIR/NAME of the dataset (optional)");
  auto& categories = opts.add_string(
      "categories", "all", "comma list of sim,gossip,serve,tree,bench");
  auto& capacity = opts.add_int("capacity", 4096, "span ring capacity");
  auto& json = opts.add_bool("json", false,
                             "dump spans as JSON-lines (same as "
                             "--format jsonl)");
  auto& format = opts.add_string("format", "",
                                 "output format: text | jsonl | chrome");
  auto& trace_id_arg = opts.add_string(
      "trace-id", "0",
      "keep only this trace id's causal span chain (0 = everything; accepts "
      "the id a query result or histogram exemplar carries)");
  auto& flight_dir = opts.add_string(
      "flight-dir", "",
      "read spans from DIR/*.flight crash rings instead of running the "
      "pipeline");
  auto& out = opts.add_string("out", "", "write here instead of stdout");
  auto& queries = opts.add_int("queries", 40, "queries to serve");
  auto& k = opts.add_int("k", 5, "cluster size constraint");
  auto& seed = opts.add_int("seed", 42, "pipeline seed");
  opts.parse(argc, argv);
  std::string fmt = format;
  if (fmt.empty()) fmt = json ? "jsonl" : "text";
  if (fmt != "text" && fmt != "jsonl" && fmt != "chrome") {
    std::fprintf(stderr, "bcc trace: --format must be text, jsonl or chrome\n");
    return 1;
  }
  const std::uint64_t want_trace =
      std::strtoull(trace_id_arg.c_str(), nullptr, 0);

  obs::Tracer& tracer = obs::Tracer::global();
  std::vector<obs::SpanRecord> spans;
  if (!flight_dir.empty()) {
    // Post-mortem mode: every span the crash rings preserved, no pipeline.
    std::vector<obs::NodeTelemetry> fleet;
    if (obs::augment_missing_from_flight(flight_dir, &fleet) == 0) {
      std::fprintf(stderr, "bcc trace: no readable *.flight ring in %s\n",
                   flight_dir.c_str());
      return 2;
    }
    for (const obs::NodeTelemetry& t : fleet) {
      spans.insert(spans.end(), t.spans.begin(), t.spans.end());
    }
  } else {
    tracer.set_capacity(static_cast<std::size_t>(std::max<long long>(
        1, static_cast<long long>(capacity))));
    if (!enable_categories(categories)) return 1;

    const SynthDataset data = dataset_or_synthetic(
        data_arg, static_cast<std::uint64_t>(seed), "bcc trace");
    run_observed_pipeline(data, static_cast<std::uint64_t>(seed),
                          static_cast<std::size_t>(queries),
                          static_cast<std::size_t>(k));
    spans = tracer.snapshot();
  }
  if (want_trace != 0) {
    const std::size_t before = spans.size();
    spans = obs::filter_trace(spans, want_trace);
    std::fprintf(stderr, "trace %llu: %zu of %zu spans\n",
                 static_cast<unsigned long long>(want_trace), spans.size(),
                 before);
  }
  std::string text;
  if (fmt == "jsonl") {
    text = obs::trace_json_lines(spans);
  } else if (fmt == "chrome") {
    text = obs::chrome_trace_json(spans);
  } else {
    // Indent children under their parent (parents always complete after
    // their children, so depth needs the full id set, not ordering).
    std::map<std::uint64_t, const obs::SpanRecord*> by_id;
    for (const obs::SpanRecord& s : spans) by_id[s.id] = &s;
    for (const obs::SpanRecord& s : spans) {
      int depth = 0;
      for (auto p = by_id.find(s.parent);
           p != by_id.end() && depth < 16;
           p = by_id.find(p->second->parent)) {
        ++depth;
      }
      char line[256];
      std::snprintf(line, sizeof line, "%*s[%s] %s  %llu us", 2 * depth, "",
                    obs::to_string(s.category), s.name,
                    static_cast<unsigned long long>(s.wall_duration_us()));
      text += line;
      if (s.sim_begin >= 0.0 && s.sim_end >= 0.0) {
        std::snprintf(line, sizeof line, "  (sim %.3fs..%.3fs)", s.sim_begin,
                      s.sim_end);
        text += line;
      }
      text += '\n';
    }
  }
  if (out.empty()) {
    std::fputs(text.c_str(), stdout);
  } else if (obs::write_text_file(out, text)) {
    std::fprintf(stderr, "trace written to %s\n", out.c_str());
  } else {
    std::fprintf(stderr, "bcc trace: cannot write %s\n", out.c_str());
    return 1;
  }
  if (flight_dir.empty()) {
    std::fprintf(stderr, "%zu spans kept (%llu started, %llu overwritten)\n",
                 spans.size(),
                 static_cast<unsigned long long>(tracer.started()),
                 static_cast<unsigned long long>(tracer.dropped()));
  } else {
    std::fprintf(stderr, "%zu spans recovered from %s\n", spans.size(),
                 flight_dir.c_str());
  }
  return 0;
}

int cmd_profile(int argc, const char* const* argv) {
  Options opts("bcc profile",
               "run the observed pipeline under the sampling profiler");
  auto& data_arg = opts.add_string("data", "",
                                   "DIR/NAME of the dataset (optional)");
  auto& queries = opts.add_int("queries", 400, "queries to serve");
  auto& k = opts.add_int("k", 5, "cluster size constraint");
  auto& hz = opts.add_int("hz", 99, "samples per second (clamped to 1..1000)");
  auto& mode = opts.add_string("mode", "cpu",
                               "what the timer counts down against: cpu "
                               "(SIGPROF, where cycles go) | wall (SIGALRM, "
                               "sees blocking)");
  auto& out = opts.add_string(
      "out", "", "write folded stacks here (flamegraph.pl/speedscope input)");
  auto& seed = opts.add_int("seed", 42, "pipeline seed");
  opts.parse(argc, argv);
  if (mode != "cpu" && mode != "wall") {
    std::fprintf(stderr, "bcc profile: --mode must be cpu or wall\n");
    return 1;
  }

  obs::SamplingProfiler::Options po;
  po.hz = static_cast<int>(hz);
  po.mode = mode == "cpu" ? obs::SamplingProfiler::Mode::kCpu
                          : obs::SamplingProfiler::Mode::kWall;
  obs::SamplingProfiler& profiler = obs::SamplingProfiler::global();
  if (!profiler.start(po)) {
    std::fprintf(stderr,
                 "bcc profile: a profiler is already armed in this process\n");
    return 1;
  }

  const SynthDataset data = dataset_or_synthetic(
      data_arg, static_cast<std::uint64_t>(seed), "bcc profile");
  run_observed_pipeline(data, static_cast<std::uint64_t>(seed),
                        static_cast<std::size_t>(queries),
                        static_cast<std::size_t>(k));
  profiler.stop();
  profiler.publish_metrics();

  // Summary on stderr so `bcc profile > stacks.folded` pipes clean data.
  const auto top = profiler.top_stacks(10);
  std::fprintf(stderr,
               "%llu samples (%llu dropped) at %d Hz %s, hottest stacks:\n",
               static_cast<unsigned long long>(profiler.samples()),
               static_cast<unsigned long long>(profiler.dropped()),
               po.hz, mode.c_str());
  for (const auto& [stack, n] : top) {
    const auto leaf = stack.find_last_of(';');
    std::fprintf(stderr, "  %8llu  %s\n", static_cast<unsigned long long>(n),
                 leaf == std::string::npos ? stack.c_str()
                                           : stack.c_str() + leaf + 1);
  }
  const std::string folded = profiler.folded_text();
  if (out.empty()) {
    std::fputs(folded.c_str(), stdout);
  } else if (obs::write_text_file(out, folded)) {
    std::printf("folded stacks written to %s (feed to flamegraph.pl or "
                "speedscope)\n",
                out.c_str());
  } else {
    std::fprintf(stderr, "bcc profile: cannot write %s\n", out.c_str());
    return 1;
  }
  return 0;
}

int cmd_health(int argc, const char* const* argv) {
  Options opts("bcc health",
               "convergence health of the gossip stack under faults");
  auto& data_arg = opts.add_string("data", "",
                                   "DIR/NAME of the dataset (optional)");
  auto& drop = opts.add_double("drop", 0.3, "per-message drop probability");
  auto& dup = opts.add_double("dup", 0.05,
                              "per-message duplication probability");
  auto& jitter = opts.add_double("jitter", 0.02,
                                 "max extra delivery delay (s, reorders)");
  auto& crash = opts.add_double("crash", 0.1,
                                "fraction of nodes that crash and recover");
  auto& n_cut = opts.add_int("n_cut", 10, "aggregate size limit");
  auto& period = opts.add_double("sample-period", 0.5,
                                 "seconds of sim time between health samples");
  auto& serve_queries = opts.add_int(
      "serve-queries", 256, "serve-plane probe: query burst size (0 = skip)");
  auto& serve_qps = opts.add_double(
      "serve-qps", 50.0,
      "serve-plane probe: admitted queries/sec per shard");
  auto& metrics_out = opts.add_string("metrics-out", "",
                                      "write the metrics registry here (JSON)");
  auto& seed = opts.add_int("seed", 42, "framework + fault seed");
  opts.parse(argc, argv);
  if (drop < 0.0 || drop >= 1.0 || crash < 0.0 || crash > 1.0 ||
      period <= 0.0) {
    std::fprintf(stderr, "bcc health: need 0 <= --drop < 1, "
                         "0 <= --crash <= 1, --sample-period > 0\n");
    return 1;
  }

  const SynthDataset data = dataset_or_synthetic(
      data_arg, static_cast<std::uint64_t>(seed), "bcc health");
  Rng rng(static_cast<std::uint64_t>(seed));
  const Framework fw = build_framework(data.distances, rng);
  const DistanceMatrix predicted = fw.predicted_distances();
  const BandwidthClasses classes = BandwidthClasses::uniform_grid(5, 300, 5);
  const std::size_t n = fw.prediction.host_count();

  // Same fault shape as `bcc chaos`: uniform loss plus staggered
  // crash/recover outages that all heal before the quiet tail.
  FaultPlan plan(static_cast<std::uint64_t>(seed) + 1);
  plan.set_default_faults(
      {.drop_prob = drop, .duplicate_prob = dup, .jitter_max = jitter});
  const auto order = fw.anchors.bfs_order();
  const std::size_t crashers =
      std::min(n - 1, static_cast<std::size_t>(crash * static_cast<double>(n)));
  for (std::size_t i = 0; i < crashers; ++i) {
    plan.add_crash(order[1 + i], 4.0 + 2.0 * static_cast<double>(i),
                   10.0 + 2.0 * static_cast<double>(i));
  }

  AsyncOverlayOptions async_options;
  async_options.n_cut = static_cast<std::size_t>(n_cut);
  async_options.faults = &plan;
  AsyncOverlay async(&fw.anchors, &predicted, &classes, async_options,
                     static_cast<std::uint64_t>(seed) + 2);
  EventEngine engine;
  const double diameter = static_cast<double>(fw.anchors.diameter());
  const double horizon = 10.0 + 2.0 * static_cast<double>(crashers) +
                         (8.0 + 24.0 * drop) * (diameter + 2.0);

  ConvergenceProbe probe(&async, &fw.anchors, &predicted, &classes,
                         static_cast<std::size_t>(n_cut), &engine);
  obs::ConvergenceMonitor monitor(&obs::Registry::global(), probe.sampler());
  async.start(engine);
  ConvergenceProbe::schedule_sampling(engine, monitor, period, horizon);
  engine.run_until(horizon);
  monitor.sample();  // final verdict at the horizon

  const obs::RegistrySnapshot snap = obs::Registry::global().snapshot();
  std::printf("health run: %zu hosts, drop %.0f%%, dup %.0f%%, "
              "%zu crash/recover, %.1fs simulated, sampled every %.2fs\n",
              n, drop * 100.0, dup * 100.0, crashers, horizon, period);
  std::printf("converged: %s", monitor.converged() ? "yes" : "NO");
  if (monitor.converged_at() >= 0.0) {
    std::printf(" (first full fixpoint match at t=%.2fs)", monitor.converged_at());
  }
  std::printf("\n");
  std::printf("drift: %zu/%.0f nodes off the sync fixpoint "
              "(fraction %.3f) | down %.0f | suspected links %.0f | "
              "suspicion churn %llu\n",
              static_cast<std::size_t>(snap.gauge_value("bcc.conv.drifted_nodes")),
              snap.gauge_value("bcc.conv.nodes"),
              snap.gauge_value("bcc.conv.drift_fraction"),
              snap.gauge_value("bcc.conv.down_nodes"),
              snap.gauge_value("bcc.conv.suspected_links"),
              static_cast<unsigned long long>(
                  snap.counter_value("bcc.conv.suspicion_churn")));
  auto print_hist = [&snap](const char* name, const char* label) {
    const obs::Histogram::Snapshot* h = snap.histogram(name);
    if (h == nullptr || h->count == 0) {
      std::printf("%s: no samples\n", label);
      return;
    }
    std::printf("%s: n=%llu p50 ~%llu ms, p90 ~%llu ms, max %llu ms\n", label,
                static_cast<unsigned long long>(h->count),
                static_cast<unsigned long long>(h->quantile(50.0)),
                static_cast<unsigned long long>(h->quantile(90.0)),
                static_cast<unsigned long long>(h->max));
  };
  print_hist("bcc.conv.staleness_ms", "staleness");
  print_hist("bcc.conv.node_convergence_ms", "per-node convergence time");
  print_hist("bcc.conv.time_to_convergence_ms", "time to convergence");

  // Serve-plane probe: snapshot the overlay as it ended (degraded when
  // nodes are still down or suspected) and push a query burst through an
  // admission-controlled QueryService — the overload block of the health
  // report. The burst deliberately exceeds the token budget so shedding
  // behavior (and stale-answer coverage) is visible.
  if (serve_queries > 0) {
    DecentralizedClusterSystem seed_sys(fw.anchors, predicted, classes,
                                        {.n_cut = async_options.n_cut});
    QueryServiceOptions serve_options;
    serve_options.threads = 2;
    serve_options.admission.rate_qps = std::max(1.0, serve_qps);
    serve_options.admission.burst = 8.0;
    serve_options.admission.queue_limit = 4;
    QueryService service(seed_sys, serve_options);
    service.refresh(*snapshot_of(async, predicted, classes));

    Rng probe_rng(static_cast<std::uint64_t>(seed) + 3);
    std::vector<QueryRequest> burst;
    burst.reserve(static_cast<std::size_t>(serve_queries));
    for (int i = 0; i < static_cast<int>(serve_queries); ++i) {
      QueryRequest request = QueryRequest::at_class(
          static_cast<NodeId>(probe_rng.below(n)), 2 + probe_rng.below(8),
          probe_rng.below(classes.size()));
      if (i % 8 == 0) request = request.with_priority(QueryPriority::kHigh);
      burst.push_back(request);
    }
    service.submit_batch(burst);  // warm pass: seeds the stale caches
    const auto replies = service.submit_batch(burst);
    std::size_t degraded = 0;
    for (const QueryResult& reply : replies) {
      if (reply.degraded) ++degraded;
    }
    const AdmissionStatsSnapshot admission = service.admission_stats();
    std::printf("serve plane: %zu-query burst x2 over %zu shards "
                "(%.0f qps/shard): %llu admitted, %llu shed "
                "(%llu with stale answer), %zu/%zu degraded replies, "
                "peak shard in-flight %zu, snapshots in limbo %zu\n",
                burst.size(), service.options().shards,
                serve_options.admission.rate_qps,
                static_cast<unsigned long long>(admission.admitted),
                static_cast<unsigned long long>(admission.shed_total()),
                static_cast<unsigned long long>(admission.shed_with_answer),
                degraded, replies.size(), admission.peak_shard_inflight,
                service.snapshots_in_limbo());
  }

  if (!maybe_write_metrics(metrics_out)) return 1;
  return monitor.converged() ? 0 : 2;
}

int cmd_eval(int argc, const char* const* argv) {
  Options opts("bcc eval", "WPR/RR sweep over the bandwidth grid");
  auto& data_arg = opts.add_string("data", "", "DIR/NAME of the dataset");
  auto& k = opts.add_int("k", 10, "cluster size constraint");
  auto& queries = opts.add_int("queries", 20, "queries per grid point");
  auto& rounds = opts.add_int("rounds", 5, "frameworks (seeds)");
  auto& seed = opts.add_int("seed", 42, "experiment seed");
  opts.parse(argc, argv);
  std::string dir, name;
  if (!split_data_arg(data_arg, dir, name)) {
    std::fprintf(stderr, "bcc eval: --data DIR/NAME is required\n");
    return 1;
  }
  const SynthDataset data = load_dataset(name, dir);
  bcc::exp::Fig3Params params;
  params.k = static_cast<std::size_t>(k);
  params.queries_per_b = static_cast<std::size_t>(queries);
  params.rounds = static_cast<std::size_t>(rounds);
  params.b_min = data.bandwidth.percentile(20.0);
  params.b_max = data.bandwidth.percentile(80.0);
  const bcc::exp::Fig3Result r =
      bcc::exp::run_fig3(data, params, static_cast<std::uint64_t>(seed));
  TablePrinter table({"b_mbps", "WPR decentral", "WPR central", "WPR eucl",
                      "RR decentral"});
  for (const auto& row : r.rows) {
    table.add_numeric_row({row.b, row.wpr_tree_decentral, row.wpr_tree_central,
                           row.wpr_eucl_central, row.rr_tree_decentral});
  }
  table.print();
  std::printf("median prediction error: tree %.3f | euclidean %.3f\n",
              r.tree_median_error, r.eucl_median_error);
  return 0;
}

int cmd_preprocess(int argc, const char* const* argv) {
  Options opts("bcc preprocess",
               "extract a complete submatrix from a raw incomplete trace");
  auto& in = opts.add_string("in", "", "raw trace CSV (0/blank = unmeasured)");
  auto& out = opts.add_string("out", ".", "output directory");
  auto& name = opts.add_string("name", "trace", "output dataset name");
  opts.parse(argc, argv);
  if (in.empty()) {
    std::fprintf(stderr, "bcc preprocess: --in FILE is required\n");
    return 1;
  }
  const PartialBandwidthMatrix raw = load_partial_bandwidth_csv(in);
  const auto subset = extract_complete_subset(raw);
  if (subset.size() < 2) {
    std::fprintf(stderr, "bcc preprocess: no complete submatrix of size >= 2 "
                         "(raw has %zu/%zu pairs missing)\n",
                 raw.total_missing(),
                 raw.size() * (raw.size() - 1) / 2);
    return 2;
  }
  const BandwidthMatrix complete = complete_submatrix(raw, subset);
  save_bandwidth_csv(out + "/" + name + ".bw.csv", complete);
  std::printf("kept %zu of %zu nodes (the paper kept 190/459 and 317/497); "
              "wrote %s/%s.bw.csv\nkept ids:",
              subset.size(), raw.size(), out.c_str(), name.c_str());
  for (NodeId h : subset) std::printf(" %zu", h);
  std::printf("\n");
  return 0;
}

int cmd_node(int argc, const char* const* argv) {
  Options opts("bcc node", "run one overlay node as a real OS process");
  auto& id = opts.add_int("id", 0, "this node's id (0..nodes-1)");
  auto& nodes = opts.add_int("nodes", 5, "cluster size (process count)");
  auto& base_port = opts.add_int("base-port", 23800,
                                 "node i listens on base-port + i");
  auto& host = opts.add_string("host", "127.0.0.1", "bind/dial address");
  auto& seed = opts.add_int("seed", 1,
                            "shared world seed (same in every process)");
  auto& n_cut = opts.add_int("n-cut", 5, "aggregate size limit");
  auto& period = opts.add_double("period", 0.05,
                                 "gossip period in wall seconds");
  auto& run_for = opts.add_double(
      "run-for", 0.0, "exit after this many seconds (0 = until quit/signal)");
  auto& metrics_out = opts.add_string("metrics-out", "",
                                      "write the metrics registry here (JSON)");
  auto& state_out = opts.add_string("state-out", "",
                                    "write the final state dump here");
  auto& flight = opts.add_string(
      "flight-recorder", "",
      "mmap crash flight recorder path (implies --trace-gossip)");
  auto& trace_gossip = opts.add_bool(
      "trace-gossip", false,
      "record gossip spans for the telemetry endpoint (`bcc collect`)");
  auto& profile_hz = opts.add_int(
      "profile-hz", 0,
      "arm the sampling profiler at this rate; folded stacks ride the "
      "telemetry endpoint (0 = off)");
  opts.parse(argc, argv);
  install_shutdown_handlers();
  net::ProcessNodeOptions po;
  po.id = static_cast<NodeId>(id);
  po.n_nodes = static_cast<std::size_t>(nodes);
  po.world_seed = static_cast<std::uint64_t>(seed);
  po.n_cut = static_cast<std::size_t>(n_cut);
  po.gossip_period = period;
  po.base_port = static_cast<std::uint16_t>(base_port);
  po.host = host;
  po.run_for = run_for;
  po.metrics_out = metrics_out;
  po.state_out = state_out;
  po.flight_recorder = flight;
  po.trace_gossip = trace_gossip;
  po.profile_hz = static_cast<int>(profile_hz);
  net::ProcessNode node(po);
  if (!node.bind()) {
    // The supervisor watches for exactly this line to re-roll its port base.
    std::printf("bind-failed\n");
    std::fflush(stdout);
    return 3;
  }
  return node.run(STDIN_FILENO, std::cout);
}

/// Shared by collect/top: the fleet's listen endpoints from (host, base
/// port, n) — the same port map every `bcc node` process uses.
std::vector<net::Endpoint> fleet_endpoints(const std::string& host,
                                           int base_port, int nodes) {
  std::vector<net::Endpoint> endpoints;
  for (int i = 0; i < nodes; ++i) {
    net::Endpoint e;
    e.host = host;
    e.port = static_cast<std::uint16_t>(base_port + i);
    endpoints.push_back(e);
  }
  return endpoints;
}

int cmd_collect(int argc, const char* const* argv) {
  Options opts("bcc collect",
               "scrape a node fleet's telemetry and merge one timeline");
  auto& nodes = opts.add_int("nodes", 5, "fleet size (ports scraped)");
  auto& base_port = opts.add_int("base-port", 23800,
                                 "node i listens on base-port + i");
  auto& host = opts.add_string("host", "127.0.0.1", "fleet address");
  auto& timeout = opts.add_double(
      "timeout", 1.0, "per-node scrape deadline (s; dead nodes cost this)");
  auto& flight_dir = opts.add_string(
      "flight-dir", "",
      "recover nodes the scrape missed from DIR/*.flight rings");
  auto& out = opts.add_string(
      "out", "", "write fleet_trace.json + fleet_metrics.json into DIR");
  opts.parse(argc, argv);

  std::vector<obs::NodeTelemetry> fleet;
  const std::size_t live = net::scrape_fleet(
      fleet_endpoints(host, base_port, nodes), timeout, &fleet);
  std::size_t recovered = 0;
  if (!flight_dir.empty()) {
    recovered = obs::augment_missing_from_flight(flight_dir, &fleet);
  }
  if (fleet.empty()) {
    std::fprintf(stderr, "bcc collect: no node answered on %s:%d..%d%s\n",
                 host.c_str(), static_cast<int>(base_port),
                 static_cast<int>(base_port) + static_cast<int>(nodes) - 1,
                 flight_dir.empty() ? "" : " and no flight ring was readable");
    return 2;
  }

  std::size_t total_spans = 0;
  for (const obs::NodeTelemetry& t : fleet) {
    total_spans += t.spans.size();
    std::printf("node %u pid %u [%s]: %zu spans, frames tx/rx %llu/%llu, "
                "spans dropped %llu\n",
                t.node, t.pid, t.recovered ? "flight" : "live",
                t.spans.size(),
                static_cast<unsigned long long>(
                    t.metrics.counter_value("bcc.net.frames_sent")),
                static_cast<unsigned long long>(
                    t.metrics.counter_value("bcc.net.frames_received")),
                static_cast<unsigned long long>(
                    t.metrics.counter_value("bcc.trace.spans_dropped")));
  }
  const obs::RegistrySnapshot merged = obs::merge_fleet_metrics(fleet);
  std::printf("fleet: %zu live + %zu recovered of %d nodes, %zu spans | "
              "frames sent %llu, spans dropped %llu\n",
              live, recovered, static_cast<int>(nodes), total_spans,
              static_cast<unsigned long long>(
                  merged.counter_value("bcc.net.frames_sent")),
              static_cast<unsigned long long>(
                  merged.counter_value("bcc.trace.spans_dropped")));
  // Tail-latency exemplar: the freshest trace id near the fleet's p99 query
  // latency — `bcc trace --trace-id <id> --flight-dir ...` pulls its chain.
  if (const obs::Histogram::Snapshot* h =
          merged.histogram(kQueryLatencyMetric)) {
    if (const obs::Exemplar* ex = h->exemplar_near(99.0)) {
      std::printf("p99 query exemplar: trace %llu (%llu us)\n",
                  static_cast<unsigned long long>(ex->trace_id),
                  static_cast<unsigned long long>(ex->value));
    }
  }
  const auto profile = obs::merge_fleet_profiles(fleet);
  if (!profile.empty()) {
    std::printf("fleet profile: %zu distinct stacks, hottest:\n",
                profile.size());
    for (std::size_t i = 0; i < profile.size() && i < 5; ++i) {
      const auto leaf = profile[i].first.find_last_of(';');
      std::printf("  %8llu  %s\n",
                  static_cast<unsigned long long>(profile[i].second),
                  leaf == std::string::npos
                      ? profile[i].first.c_str()
                      : profile[i].first.c_str() + leaf + 1);
    }
  }
  if (!out.empty()) {
    if (!net::ProcessSupervisor::write_fleet_artifacts(fleet, out)) {
      std::fprintf(stderr, "bcc collect: cannot write artifacts into %s\n",
                   out.c_str());
      return 1;
    }
    std::printf("wrote %s/fleet_trace.json (load in ui.perfetto.dev) and "
                "%s/fleet_metrics.json\n",
                out.c_str(), out.c_str());
    if (!profile.empty()) {
      std::string folded;
      char line[64];
      for (const auto& [stack, n] : profile) {
        folded += stack;
        std::snprintf(line, sizeof line, " %llu\n",
                      static_cast<unsigned long long>(n));
        folded += line;
      }
      if (obs::write_text_file(out + "/fleet_profile.folded", folded)) {
        std::printf("wrote %s/fleet_profile.folded\n", out.c_str());
      }
    }
  }
  return 0;
}

int cmd_top(int argc, const char* const* argv) {
  Options opts("bcc top", "refreshing fleet health view over live telemetry");
  auto& nodes = opts.add_int("nodes", 5, "fleet size (ports scraped)");
  auto& base_port = opts.add_int("base-port", 23800,
                                 "node i listens on base-port + i");
  auto& host = opts.add_string("host", "127.0.0.1", "fleet address");
  auto& interval = opts.add_double("interval", 1.0,
                                   "seconds between refreshes");
  auto& iterations = opts.add_int(
      "iterations", 0, "stop after this many refreshes (0 = until ^C)");
  auto& timeout = opts.add_double("timeout", 0.3, "per-node scrape deadline");
  opts.parse(argc, argv);
  if (interval <= 0.0) {
    std::fprintf(stderr, "bcc top: --interval must be > 0\n");
    return 1;
  }
  install_shutdown_handlers();

  // Previous scrape per node: sender steady-clock us + the counters rates
  // are derived from. The node's own clock spacing is the rate denominator,
  // so collector-side scheduling jitter never skews the rates.
  struct Prev {
    std::uint64_t wall_us = 0;
    std::uint64_t frames_sent = 0;
    std::uint64_t queries = 0;
  };
  std::map<std::uint32_t, Prev> prev;
  const bool tty = ::isatty(STDOUT_FILENO) != 0;

  for (int round = 0; iterations == 0 || round < iterations; ++round) {
    std::vector<obs::NodeTelemetry> fleet;
    net::scrape_fleet(fleet_endpoints(host, base_port, nodes), timeout,
                      &fleet);
    if (shutdown_requested()) break;

    std::string screen;
    char line[256];
    std::snprintf(line, sizeof line,
                  "bcc top — %zu/%d nodes answering on %s:%d (refresh %.1fs)"
                  "\n\n",
                  fleet.size(), static_cast<int>(nodes), host.c_str(),
                  static_cast<int>(base_port), static_cast<double>(interval));
    screen += line;
    std::snprintf(line, sizeof line,
                  "%5s %7s %9s %7s %6s %9s %6s %6s %14s\n",
                  "node", "pid", "frames/s", "qps", "shed%", "stale-ms",
                  "susp", "drop", "p99-trace");
    screen += line;
    for (const obs::NodeTelemetry& t : fleet) {
      const std::uint64_t frames =
          t.metrics.counter_value("bcc.net.frames_sent");
      const std::uint64_t queries =
          t.metrics.counter_value("bcc.serve.queries");
      // Rates need two samples from the SAME node incarnation with real
      // clock spacing between them. First sight, a restarted node (counters
      // went backwards), or zero spacing (re-scrape inside the sender's
      // clock granularity) render "--" rather than a nan/inf or a
      // nonsense negative rate.
      double frames_rate = 0.0, query_rate = 0.0;
      bool have_rates = false;
      const auto p = prev.find(t.node);
      if (p != prev.end() && t.wall_now_us > p->second.wall_us &&
          frames >= p->second.frames_sent && queries >= p->second.queries) {
        const double dt =
            static_cast<double>(t.wall_now_us - p->second.wall_us) * 1e-6;
        frames_rate =
            static_cast<double>(frames - p->second.frames_sent) / dt;
        query_rate = static_cast<double>(queries - p->second.queries) / dt;
        have_rates = true;
      }
      prev[t.node] = Prev{t.wall_now_us, frames, queries};
      char frames_buf[16], qps_buf[16];
      if (have_rates) {
        std::snprintf(frames_buf, sizeof frames_buf, "%.1f", frames_rate);
        std::snprintf(qps_buf, sizeof qps_buf, "%.1f", query_rate);
      } else {
        std::snprintf(frames_buf, sizeof frames_buf, "--");
        std::snprintf(qps_buf, sizeof qps_buf, "--");
      }

      const std::uint64_t admitted =
          t.metrics.counter_value("bcc.serve.shard.admitted");
      const std::uint64_t shed = t.metrics.counter_value(
                                     "bcc.serve.shard.shed") +
                                 t.metrics.counter_value(
                                     "bcc.serve.shard.shed_with_answer");
      const double shed_pct =
          admitted + shed == 0
              ? 0.0
              : 100.0 * static_cast<double>(shed) /
                    static_cast<double>(admitted + shed);
      const obs::Histogram::Snapshot* stale =
          t.metrics.histogram(obs::kStalenessHistogramName);
      char stale_buf[32];
      if (stale != nullptr && stale->count > 0) {
        std::snprintf(stale_buf, sizeof stale_buf, "%llu/%llu",
                      static_cast<unsigned long long>(stale->quantile(50.0)),
                      static_cast<unsigned long long>(stale->quantile(99.0)));
      } else {
        std::snprintf(stale_buf, sizeof stale_buf, "-");
      }
      // The node's slowest recent query, by name: the trace id riding the
      // p99 bucket of its latency histogram (feed to `bcc trace
      // --trace-id`). "-" until a traced query lands in that bucket.
      char exemplar_buf[24];
      std::snprintf(exemplar_buf, sizeof exemplar_buf, "-");
      if (const obs::Histogram::Snapshot* qh =
              t.metrics.histogram(kQueryLatencyMetric)) {
        if (const obs::Exemplar* ex = qh->exemplar_near(99.0)) {
          std::snprintf(exemplar_buf, sizeof exemplar_buf, "%llu",
                        static_cast<unsigned long long>(ex->trace_id));
        }
      }
      std::snprintf(
          line, sizeof line, "%5u %7u %9s %7s %6.1f %9s %6.0f %6llu %14s\n",
          t.node, t.pid, frames_buf, qps_buf, shed_pct, stale_buf,
          t.metrics.gauge_value("bcc.conv.suspected_links"),
          static_cast<unsigned long long>(
              t.metrics.counter_value("bcc.trace.spans_dropped")),
          exemplar_buf);
      screen += line;
    }

    // Fleet-wide reconvergence footer: merged bucket-exact histograms.
    const obs::RegistrySnapshot merged = obs::merge_fleet_metrics(fleet);
    screen += "\nreconvergence (fleet, ms):\n";
    const char* hists[] = {"bcc.conv.time_to_convergence_ms",
                           "bcc.conv.reconverge_congestion_ms",
                           "bcc.conv.reconverge_flash_crowd_ms",
                           "bcc.conv.reconverge_region_degrade_ms"};
    for (const char* name : hists) {
      const obs::Histogram::Snapshot* h = merged.histogram(name);
      if (h == nullptr || h->count == 0) continue;
      std::snprintf(line, sizeof line,
                    "  %-38s n=%-6llu p50 ~%llu  p99 ~%llu  max %llu\n",
                    name, static_cast<unsigned long long>(h->count),
                    static_cast<unsigned long long>(h->quantile(50.0)),
                    static_cast<unsigned long long>(h->quantile(99.0)),
                    static_cast<unsigned long long>(h->max));
      screen += line;
    }
    if (screen.back() != '\n') screen += '\n';

    if (tty) std::fputs("\x1b[H\x1b[2J", stdout);  // home + clear
    std::fputs(screen.c_str(), stdout);
    std::fflush(stdout);
    if (shutdown_requested() ||
        (iterations != 0 && round + 1 >= iterations)) {
      break;
    }
    ::usleep(static_cast<useconds_t>(interval * 1e6));
    if (shutdown_requested()) break;
  }
  return 0;
}

void usage() {
  std::fputs(
      "bcc — bandwidth-constrained clustering in tree metric spaces\n"
      "usage: bcc <gen|preprocess|embed|treeness|query|eval|chaos|metrics|"
      "trace|profile|health|node|collect|top> [--help] [options]\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string cmd = argv[1];
  // Shift argv so each subcommand parses its own flags.
  const int sub_argc = argc - 1;
  char** sub_argv = argv + 1;
  try {
    if (cmd == "gen") return cmd_gen(sub_argc, sub_argv);
    if (cmd == "preprocess") return cmd_preprocess(sub_argc, sub_argv);
    if (cmd == "embed") return cmd_embed(sub_argc, sub_argv);
    if (cmd == "treeness") return cmd_treeness(sub_argc, sub_argv);
    if (cmd == "query") return cmd_query(sub_argc, sub_argv);
    if (cmd == "eval") return cmd_eval(sub_argc, sub_argv);
    if (cmd == "chaos") return cmd_chaos(sub_argc, sub_argv);
    if (cmd == "metrics") return cmd_metrics(sub_argc, sub_argv);
    if (cmd == "trace") return cmd_trace(sub_argc, sub_argv);
    if (cmd == "profile") return cmd_profile(sub_argc, sub_argv);
    if (cmd == "health") return cmd_health(sub_argc, sub_argv);
    if (cmd == "node") return cmd_node(sub_argc, sub_argv);
    if (cmd == "collect") return cmd_collect(sub_argc, sub_argv);
    if (cmd == "top") return cmd_top(sub_argc, sub_argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bcc %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
  usage();
  return 1;
}
