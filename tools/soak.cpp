// Soak harness: streaming re-clustering under time-varying bandwidth for
// simulated hours (ctest -L soak; see DESIGN.md §9).
//
// Per seed, one world runs the full incremental-repair pipeline every epoch:
//
//   BandwidthDynamics.step()            — AR(1) + diurnal + congestion +
//                                         flash crowd + region degradation
//     -> dirty_hosts()                  — hosts whose links really moved
//     -> FrameworkMaintainer.refresh_dirty()    — re-embed only those
//     -> write_predicted_delta()        — O(k·n) prediction update
//     -> DecentralizedClusterSystem.apply_delta()  — mark the subtree dirty
//     -> QueryService serves *during* the repair window (degraded answers
//        must stay well-formed)
//     -> run_to_convergence()           — delta re-gossip to the fixpoint
//
// Invariants asserted every epoch (violations exit nonzero):
//   * bounded staleness: the system reconverges within --staleness-budget
//     consecutive epochs of every disturbance;
//   * degraded-but-well-formed serving: queries answered mid-repair carry
//     degraded=true + the source epoch, and any kFound cluster has exactly k
//     valid members;
//   * fixpoint exactness (every --verify-every epochs and at the end): the
//     incrementally repaired state string-equals the canonical dump of a
//     from-scratch system built on the same (tree, predicted, classes).
//
// Per-disturbance-class time-to-reconvergence lands in the bcc.conv.*
// histograms (obs::ConvergenceMonitor::record_reconvergence) and the whole
// run is mirrored into BENCH_soak.json via obs::BenchReport.
//
// Env knobs (CI nightly widens them): BCC_SOAK_EPOCHS (default 1000),
// BCC_SOAK_SEEDS (default 1), BCC_SOAK_HOSTS (default 24).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/options.h"
#include "common/rng.h"
#include "core/system.h"
#include "data/dynamics.h"
#include "data/planetlab_synth.h"
#include "obs/bench_report.h"
#include "obs/convergence.h"
#include "serve/query_service.h"
#include "serve/snapshot.h"
#include "tree/maintenance.h"

namespace {

using namespace bcc;

std::int64_t env_int(const char* name, std::int64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  return std::atoll(v);
}

BandwidthClasses classes_for(const DistanceMatrix& predicted) {
  const double dmax = predicted.max_distance();
  const double c = kDefaultTransformC;
  return BandwidthClasses({c / dmax, c / (dmax * 0.5), c / (dmax * 0.2)}, c);
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = p / 100.0 * static_cast<double>(v.size() - 1);
  return v[static_cast<std::size_t>(idx + 0.5)];
}

/// One disturbance episode awaiting its first post-onset convergence.
struct PendingEpisode {
  DisturbanceClass kind;
  std::size_t epoch;
};

/// Everything the convergence monitor samples, swapped per seed.
struct SeedView {
  std::size_t epoch = 0;
  double epoch_period = 60.0;  ///< simulated seconds per epoch
  bool converged = false;
  std::vector<std::size_t> last_repair;  ///< per host, epoch of last repair
};

struct SoakTotals {
  std::size_t events[3] = {0, 0, 0};
  std::vector<double> ttr_ms[3];
  std::size_t repairs_delta = 0;
  std::size_t repairs_full = 0;
  std::size_t repaired_hosts = 0;
  std::size_t queries = 0;
  std::size_t degraded_queries = 0;
  std::size_t found_queries = 0;
  std::size_t verifications = 0;
  std::size_t max_streak = 0;
  std::size_t recomputed = 0;
  std::size_t reused = 0;
  std::size_t failures = 0;
};

#define SOAK_CHECK(cond, ...)                          \
  do {                                                 \
    if (!(cond)) {                                     \
      std::fprintf(stderr, "SOAK FAIL: " __VA_ARGS__); \
      std::fprintf(stderr, "\n");                      \
      ++totals.failures;                               \
    }                                                  \
  } while (0)

void run_seed(std::uint64_t seed, std::size_t hosts, std::size_t epochs,
              std::size_t verify_every, std::size_t staleness_budget,
              double dirty_threshold, obs::ConvergenceMonitor& monitor,
              SeedView& view, SoakTotals& totals) {
  Rng rng(seed);
  SynthOptions sopts;
  sopts.hosts = hosts;
  sopts.noise_sigma = 0.1;
  const SynthDataset data = synthesize_planetlab(sopts, rng);

  DynamicsOptions dopts;
  dopts.rho = 0.85;
  dopts.sigma = 0.05;
  dopts.congestion_rate = 0.05;
  dopts.diurnal_amplitude = 0.3;
  dopts.diurnal_period = 96;
  dopts.flash_crowd_rate = 0.02;
  dopts.flash_crowd_fraction = 0.15;
  dopts.region_degrade_rate = 0.02;
  dopts.regions = 4;
  BandwidthDynamics dyn(data, dopts, seed);

  DistanceMatrix real = dyn.current().to_distance(data.c);
  FrameworkMaintainer maintainer(&real);
  for (NodeId h = 0; h < hosts; ++h) maintainer.join(h);

  DistanceMatrix predicted(hosts);
  maintainer.write_predicted(&predicted);
  const BandwidthClasses classes = classes_for(predicted);

  SystemOptions sys_opts;
  sys_opts.n_cut = 5;
  DecentralizedClusterSystem sys(maintainer.anchors(), predicted, classes,
                                 sys_opts);
  sys.run_to_convergence();
  SOAK_CHECK(sys.converged(), "seed %llu: initial convergence failed",
             (unsigned long long)seed);

  QueryServiceOptions qopts;
  qopts.threads = 2;
  qopts.shards = 4;
  QueryService service(sys, qopts);

  view.epoch = 0;
  view.converged = sys.converged();
  view.last_repair.assign(hosts, 0);

  Rng query_rng = Rng(seed).split(97);
  std::vector<PendingEpisode> pending;
  std::size_t streak = 0;

  for (std::size_t e = 1; e <= epochs; ++e) {
    dyn.step();
    for (const DisturbanceEvent& ev : dyn.events()) {
      pending.push_back({ev.kind, e});
      ++totals.events[static_cast<std::size_t>(ev.kind)];
    }

    real = dyn.current().to_distance(data.c);
    const std::vector<NodeId> dirty = dyn.dirty_hosts(dirty_threshold);
    const FrameworkMaintainer::RepairReport rep =
        maintainer.refresh_dirty(&real, dirty);
    if (rep.full_rebuild) {
      maintainer.write_predicted(&predicted);
    } else {
      maintainer.write_predicted_delta(&predicted, rep.repaired);
    }
    const bool delta =
        sys.apply_delta(predicted, rep.repaired, &maintainer.anchors());
    if (!rep.repaired.empty()) {
      delta ? ++totals.repairs_delta : ++totals.repairs_full;
    }
    totals.repaired_hosts += rep.repaired.size();
    for (NodeId h : rep.repaired) view.last_repair[h] = e;

    // Repair-window serving: answers must keep flowing, flagged degraded but
    // structurally well-formed.
    if (!rep.repaired.empty()) {
      service.refresh(*snapshot_of(sys, 0, e));
      const bool mid_repair_converged = sys.converged();
      for (int q = 0; q < 2; ++q) {
        const NodeId start = static_cast<NodeId>(query_rng.below(hosts));
        const std::size_t k = 2 + query_rng.below(3);
        const std::size_t cls = query_rng.below(classes.size());
        const QueryResult r = service.submit(QueryRequest::at_class(start, k, cls));
        ++totals.queries;
        SOAK_CHECK(r.status == QueryStatus::kFound ||
                       r.status == QueryStatus::kNotFound,
                   "seed %llu epoch %zu: mid-repair query status %s",
                   (unsigned long long)seed, e, to_string(r.status));
        SOAK_CHECK(r.degraded == !mid_repair_converged,
                   "seed %llu epoch %zu: degraded flag %d, converged %d",
                   (unsigned long long)seed, e, (int)r.degraded,
                   (int)mid_repair_converged);
        SOAK_CHECK(r.source_epoch == e,
                   "seed %llu epoch %zu: source_epoch %llu",
                   (unsigned long long)seed, e,
                   (unsigned long long)r.source_epoch);
        if (r.degraded) ++totals.degraded_queries;
        if (r.found()) {
          ++totals.found_queries;
          SOAK_CHECK(r.cluster.size() == k,
                     "seed %llu epoch %zu: kFound cluster size %zu != k %zu",
                     (unsigned long long)seed, e, r.cluster.size(), k);
          for (NodeId m : r.cluster) {
            SOAK_CHECK(m < hosts, "seed %llu epoch %zu: bad member %llu",
                       (unsigned long long)seed, e, (unsigned long long)m);
          }
        }
      }
    }

    const std::size_t cycles = sys.run_to_convergence();
    view.epoch = e;
    view.converged = sys.converged();
    if (sys.converged()) {
      streak = 0;
      // One gossip cycle = 1 simulated second: an episode's
      // time-to-reconvergence spans the epochs it kept the system off the
      // fixpoint plus the final repair's gossip cycles.
      for (const PendingEpisode& p : pending) {
        const double ms = (static_cast<double>(e - p.epoch) * view.epoch_period +
                           static_cast<double>(cycles)) *
                          1000.0;
        monitor.record_reconvergence(to_string(p.kind), ms);
        totals.ttr_ms[static_cast<std::size_t>(p.kind)].push_back(ms);
      }
      pending.clear();
      service.refresh(*snapshot_of(sys, 0, e));
    } else {
      ++streak;
      totals.max_streak = std::max(totals.max_streak, streak);
      SOAK_CHECK(streak <= staleness_budget,
                 "seed %llu epoch %zu: unconverged for %zu consecutive epochs"
                 " (budget %zu) — staleness bound violated",
                 (unsigned long long)seed, e, streak, staleness_budget);
    }
    monitor.sample();

    if (e % verify_every == 0 || e == epochs) {
      // Fixpoint exactness: the incrementally repaired state must
      // string-equal a from-scratch recompute over the same inputs.
      DecentralizedClusterSystem fresh(maintainer.anchors(), predicted,
                                       classes, sys_opts);
      fresh.run_to_convergence();
      SOAK_CHECK(fresh.converged(),
                 "seed %llu epoch %zu: fresh system did not converge",
                 (unsigned long long)seed, e);
      SOAK_CHECK(sys.converged(),
                 "seed %llu epoch %zu: repaired system not converged at"
                 " verification point",
                 (unsigned long long)seed, e);
      SOAK_CHECK(sys.canonical_dump() == fresh.canonical_dump(),
                 "seed %llu epoch %zu: incremental state diverged from the"
                 " from-scratch fixpoint",
                 (unsigned long long)seed, e);
      ++totals.verifications;
    }
  }

  totals.recomputed += sys.messages_recomputed();
  totals.reused += sys.messages_reused();
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("soak", "Streaming re-clustering soak harness (see DESIGN.md §9)");
  auto& epochs_flag = opts.add_int("epochs", env_int("BCC_SOAK_EPOCHS", 1000),
                                   "epochs per seed (BCC_SOAK_EPOCHS)");
  auto& seeds_flag = opts.add_int("seeds", env_int("BCC_SOAK_SEEDS", 1),
                                  "number of seeds (BCC_SOAK_SEEDS)");
  auto& hosts_flag = opts.add_int("hosts", env_int("BCC_SOAK_HOSTS", 24),
                                  "hosts per world (BCC_SOAK_HOSTS)");
  auto& verify_flag =
      opts.add_int("verify-every", 250,
                   "epochs between from-scratch fixpoint verifications");
  auto& budget_flag =
      opts.add_int("staleness-budget", 2,
                   "max consecutive unconverged epochs tolerated");
  auto& dirty_flag = opts.add_double(
      "dirty-threshold", 0.3, "min per-host |delta log BW| to trigger repair");
  opts.parse(argc, argv);

  const auto epochs = static_cast<std::size_t>(epochs_flag);
  const auto seeds = static_cast<std::size_t>(seeds_flag);
  const auto hosts = static_cast<std::size_t>(hosts_flag);

  obs::BenchReport report("soak");
  SeedView view;
  SeedView* current = &view;
  // The monitor samples whatever world is currently running; staleness is
  // simulated seconds since each host's embedding was last repaired.
  obs::ConvergenceMonitor monitor(&report.registry(), [&current]() {
    obs::ConvergenceSample s;
    const SeedView& v = *current;
    s.now = static_cast<double>(v.epoch) * v.epoch_period;
    s.nodes.reserve(v.last_repair.size());
    for (std::size_t h = 0; h < v.last_repair.size(); ++h) {
      obs::NodeHealth n;
      n.id = h;
      n.staleness =
          static_cast<double>(v.epoch - v.last_repair[h]) * v.epoch_period;
      n.matches_reference = v.converged;
      s.nodes.push_back(n);
    }
    return s;
  });

  SoakTotals totals;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    run_seed(seed, hosts, epochs, static_cast<std::size_t>(verify_flag),
             static_cast<std::size_t>(budget_flag), dirty_flag, monitor, view,
             totals);
  }

  const double total_msgs =
      static_cast<double>(totals.recomputed + totals.reused);
  report.set("bcc.bench.soak.epochs", static_cast<double>(epochs));
  report.set("bcc.bench.soak.seeds", static_cast<double>(seeds));
  report.set("bcc.bench.soak.hosts", static_cast<double>(hosts));
  report.set("bcc.bench.soak.repairs_delta",
             static_cast<double>(totals.repairs_delta));
  report.set("bcc.bench.soak.repairs_full",
             static_cast<double>(totals.repairs_full));
  report.set("bcc.bench.soak.repaired_hosts",
             static_cast<double>(totals.repaired_hosts));
  report.set("bcc.bench.soak.reuse_fraction",
             total_msgs == 0.0 ? 0.0
                               : static_cast<double>(totals.reused) / total_msgs);
  report.set("bcc.bench.soak.queries", static_cast<double>(totals.queries));
  report.set("bcc.bench.soak.degraded_queries",
             static_cast<double>(totals.degraded_queries));
  report.set("bcc.bench.soak.found_queries",
             static_cast<double>(totals.found_queries));
  report.set("bcc.bench.soak.verifications",
             static_cast<double>(totals.verifications));
  report.set("bcc.bench.soak.max_unconverged_streak",
             static_cast<double>(totals.max_streak));
  static const char* kClassNames[3] = {"congestion", "flash_crowd",
                                       "region_degrade"};
  for (std::size_t k = 0; k < 3; ++k) {
    const std::string base = std::string("bcc.bench.soak.") + kClassNames[k];
    report.set(base + "_events", static_cast<double>(totals.events[k]));
    report.set(base + "_ttr_ms_p50", percentile(totals.ttr_ms[k], 50.0));
    report.set(base + "_ttr_ms_p95", percentile(totals.ttr_ms[k], 95.0));
    report.set(base + "_ttr_ms_max", percentile(totals.ttr_ms[k], 100.0));
  }
  if (!report.write()) {
    std::fprintf(stderr, "soak: failed to write %s\n", report.path().c_str());
    return 1;
  }

  std::printf(
      "soak: %zu seed(s) x %zu epochs x %zu hosts — %zu delta repairs, %zu "
      "full, %.1f%% messages reused, %zu queries (%zu degraded), %zu fixpoint "
      "verifications, events c/f/r = %zu/%zu/%zu -> %s\n",
      seeds, epochs, hosts, totals.repairs_delta, totals.repairs_full,
      total_msgs == 0.0 ? 0.0 : 100.0 * static_cast<double>(totals.reused) / total_msgs,
      totals.queries, totals.degraded_queries, totals.verifications,
      totals.events[0], totals.events[1], totals.events[2],
      report.path().c_str());
  if (totals.failures > 0) {
    std::fprintf(stderr, "soak: %zu invariant violation(s)\n", totals.failures);
    return 1;
  }
  return 0;
}
