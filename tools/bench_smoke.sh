#!/usr/bin/env bash
# bench_smoke — ctest entry point for the bench-regression gate.
#
# Runs a fast subset of the micro and serve harnesses, then diffs each fresh
# BENCH_<name>.json against its committed baseline with bench_diff. Only
# cpu_ns metrics gate (wall time is hopeless under a parallel ctest run on a
# small machine) and the threshold is deliberately loose: the gate exists to
# catch order-of-magnitude accidents (a debug build, an accidentally
# quadratic loop), not 10% noise. Tight-threshold comparisons are what
# `bench_diff --threshold 0.10` on two full, quiet-machine runs is for.
#
#   bench_smoke.sh MICRO_BENCH SERVE_BENCH NET_BENCH COLLECT_BENCH \
#                  PROFILE_BENCH BENCH_DIFF MICRO_BASELINE SERVE_BASELINE \
#                  NET_BASELINE COLLECT_BASELINE PROFILE_BASELINE
set -euo pipefail

if [ "$#" -ne 11 ]; then
  echo "usage: bench_smoke.sh MICRO_BENCH SERVE_BENCH NET_BENCH COLLECT_BENCH PROFILE_BENCH BENCH_DIFF MICRO_BASELINE SERVE_BASELINE NET_BASELINE COLLECT_BASELINE PROFILE_BASELINE" >&2
  exit 1
fi
micro_bench=$1
serve_bench=$2
net_bench=$3
collect_bench=$4
profile_bench=$5
bench_diff=$6
micro_baseline=$7
serve_baseline=$8
net_baseline=$9
collect_baseline=${10}
profile_baseline=${11}

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

# Fast, allocation-light benchmarks only: the smoke gate must cost seconds.
BCC_BENCH_OUT="$workdir" "$micro_bench" \
  --benchmark_filter='BM_RegistryHotPath|BM_SpanOnOff|BM_EventEngineThroughput' \
  --benchmark_min_time=0.05 >/dev/null

"$bench_diff" \
  --baseline "$micro_baseline" \
  --candidate "$workdir/BENCH_micro.json" \
  --metrics '\.cpu_ns$' \
  --threshold 4.0

# Serve-plane subset: epoch pin/publish and the warm-cache / shed submit
# paths (the overload scenario bench is full-run only — too slow for smoke).
BCC_BENCH_OUT="$workdir" "$serve_bench" \
  --benchmark_filter='BM_EpochPin|BM_EpochPublish|BM_ShardedQuerySubmit|BM_ShardedQueryShed' \
  --benchmark_min_time=0.05 >/dev/null

"$bench_diff" \
  --baseline "$serve_baseline" \
  --candidate "$workdir/BENCH_serve.json" \
  --metrics '\.cpu_ns$' \
  --threshold 4.0

# Transport subset: codec + loopback throughput (BM_TcpRoundTrip is
# full-run only — its wall time lives in poll(2) and cpu_ns jitters).
BCC_BENCH_OUT="$workdir" "$net_bench" \
  --benchmark_filter='BM_FrameEncode|BM_FrameDecode|BM_TransportThroughput' \
  --benchmark_min_time=0.05 >/dev/null

"$bench_diff" \
  --baseline "$net_baseline" \
  --candidate "$workdir/BENCH_net.json" \
  --metrics '\.cpu_ns$' \
  --threshold 4.0

# Telemetry-plane subset: codec + fleet merge + the flight-recorder commit
# path (the clock-offset estimator and the A/B sink pair are full-run only).
BCC_BENCH_OUT="$workdir" "$collect_bench" \
  --benchmark_filter='BM_EncodeTelemetry|BM_DecodeTelemetry|BM_MergeFleet|BM_FlightRecordSpan' \
  --benchmark_min_time=0.05 >/dev/null

"$bench_diff" \
  --baseline "$collect_baseline" \
  --candidate "$workdir/BENCH_collect.json" \
  --metrics '\.cpu_ns$' \
  --threshold 4.0

# Observatory subset: the exemplar record paths and the disabled-path submit
# loop (the A/B overhead bench with its 3x20k passes is full-run only).
BCC_BENCH_OUT="$workdir" "$profile_bench" \
  --benchmark_filter='BM_HistogramRecordPlain|BM_HistogramRecordExemplar|BM_SubmitObservatoryOff' \
  --benchmark_min_time=0.05 >/dev/null

"$bench_diff" \
  --baseline "$profile_baseline" \
  --candidate "$workdir/BENCH_profile.json" \
  --metrics '\.cpu_ns$' \
  --threshold 4.0
