#!/usr/bin/env bash
# bench_smoke — ctest entry point for the bench-regression gate.
#
# Runs a fast subset of the micro harness, then diffs the fresh
# BENCH_micro.json against the committed baseline with bench_diff. Only
# cpu_ns metrics gate (wall time is hopeless under a parallel ctest run on a
# small machine) and the threshold is deliberately loose: the gate exists to
# catch order-of-magnitude accidents (a debug build, an accidentally
# quadratic loop), not 10% noise. Tight-threshold comparisons are what
# `bench_diff --threshold 0.10` on two full, quiet-machine runs is for.
#
#   bench_smoke.sh MICRO_BENCH BENCH_DIFF BASELINE_JSON
set -euo pipefail

if [ "$#" -ne 3 ]; then
  echo "usage: bench_smoke.sh MICRO_BENCH BENCH_DIFF BASELINE_JSON" >&2
  exit 1
fi
micro_bench=$1
bench_diff=$2
baseline=$3

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

# Fast, allocation-light benchmarks only: the smoke gate must cost seconds.
BCC_BENCH_OUT="$workdir" "$micro_bench" \
  --benchmark_filter='BM_RegistryHotPath|BM_SpanOnOff|BM_EventEngineThroughput' \
  --benchmark_min_time=0.05 >/dev/null

"$bench_diff" \
  --baseline "$baseline" \
  --candidate "$workdir/BENCH_micro.json" \
  --metrics '\.cpu_ns$' \
  --threshold 4.0
